//! A textual format for answer set grammars, mirroring the notation of the
//! paper and its companion ASG work:
//!
//! ```text
//! % aⁿbⁿcⁿ
//! start -> as bs cs {
//!     :- size(X)@1, not size(X)@2.
//!     :- size(X)@2, not size(X)@3.
//! }
//! as -> "a" as { size(X + 1) :- size(X)@2. }
//! as -> { size(0). }
//! ```
//!
//! Quoted tokens are terminals; bare identifiers are nonterminals. The
//! left-hand side of the first production is the start symbol. Annotations
//! between `{ … }` use the `agenp-asp` syntax.

use crate::asg::Asg;
use crate::cfg::{nt, t, CfgBuilder, Rhs};
use agenp_asp::Program;
use std::fmt;

/// Errors from the textual grammar parser.
#[derive(Clone, Debug)]
pub struct GrammarParseError {
    msg: String,
    line: usize,
}

impl GrammarParseError {
    fn new(msg: impl Into<String>, line: usize) -> GrammarParseError {
        GrammarParseError {
            msg: msg.into(),
            line,
        }
    }

    /// 1-based line of the error.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for GrammarParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "grammar parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for GrammarParseError {}

#[derive(Debug, PartialEq)]
enum Tok {
    Ident(String),
    Quoted(String),
    Arrow,
    Annotation(String),
}

fn tokenize(src: &str) -> Result<Vec<(Tok, usize)>, GrammarParseError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'%' | b'#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'-' if bytes.get(i + 1) == Some(&b'>') => {
                out.push((Tok::Arrow, line));
                i += 2;
            }
            b'"' => {
                i += 1;
                let start = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    if bytes[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(GrammarParseError::new("unterminated terminal string", line));
                }
                out.push((Tok::Quoted(src[start..i].to_owned()), line));
                i += 1;
            }
            b'{' => {
                i += 1;
                let start = i;
                let mut depth = 1;
                while i < bytes.len() && depth > 0 {
                    match bytes[i] {
                        b'{' => depth += 1,
                        b'}' => depth -= 1,
                        b'\n' => line += 1,
                        _ => {}
                    }
                    i += 1;
                }
                if depth > 0 {
                    return Err(GrammarParseError::new("unterminated `{` annotation", line));
                }
                out.push((Tok::Annotation(src[start..i - 1].to_owned()), line));
            }
            c if c.is_ascii_alphanumeric() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push((Tok::Ident(src[start..i].to_owned()), line));
            }
            other => {
                return Err(GrammarParseError::new(
                    format!("unexpected character `{}`", other as char),
                    line,
                ));
            }
        }
    }
    Ok(out)
}

/// Parses the textual ASG format into an [`Asg`].
///
/// # Errors
///
/// Returns a [`GrammarParseError`] on malformed grammar syntax, malformed
/// embedded ASP, or an invalid grammar (undefined nonterminal, no start).
pub fn parse_asg(src: &str) -> Result<Asg, GrammarParseError> {
    let toks = tokenize(src)?;
    let mut builder = CfgBuilder::new();
    // Collect productions first: (lhs, rhs, annotation, line).
    let mut prods: Vec<(String, Vec<Rhs>, Option<String>, usize)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (lhs, line) = match &toks[i] {
            (Tok::Ident(s), l) => (s.clone(), *l),
            (_, l) => {
                return Err(GrammarParseError::new(
                    "expected production left-hand side",
                    *l,
                ))
            }
        };
        i += 1;
        match toks.get(i) {
            Some((Tok::Arrow, _)) => i += 1,
            _ => return Err(GrammarParseError::new("expected `->`", line)),
        }
        let mut rhs = Vec::new();
        let mut annotation = None;
        while i < toks.len() {
            match &toks[i] {
                (Tok::Quoted(s), _) => {
                    rhs.push(t(s));
                    i += 1;
                }
                (Tok::Ident(s), _) => {
                    // A bare identifier followed by `->` begins the next
                    // production.
                    if matches!(toks.get(i + 1), Some((Tok::Arrow, _))) {
                        break;
                    }
                    rhs.push(nt(s));
                    i += 1;
                }
                (Tok::Annotation(a), _) => {
                    annotation = Some(a.clone());
                    i += 1;
                    break;
                }
                (Tok::Arrow, l) => {
                    return Err(GrammarParseError::new("unexpected `->`", *l));
                }
            }
        }
        prods.push((lhs, rhs, annotation, line));
    }
    if prods.is_empty() {
        return Err(GrammarParseError::new("empty grammar", 1));
    }
    let mut ids = Vec::with_capacity(prods.len());
    for (lhs, rhs, _, _) in &prods {
        ids.push(builder.production(lhs, rhs.clone()));
    }
    let cfg = builder
        .build()
        .map_err(|e| GrammarParseError::new(e.to_string(), 1))?;
    let mut asg = Asg::from_cfg(cfg);
    for (id, (_, _, annotation, line)) in ids.iter().zip(&prods) {
        if let Some(text) = annotation {
            let program: Program = text
                .parse()
                .map_err(|e| GrammarParseError::new(format!("in annotation: {e}"), *line))?;
            asg.set_annotation(*id, program)
                .map_err(|e| GrammarParseError::new(e.to_string(), *line))?;
        }
    }
    Ok(asg)
}

impl std::str::FromStr for Asg {
    type Err = GrammarParseError;

    fn from_str(s: &str) -> Result<Asg, GrammarParseError> {
        parse_asg(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ANBNCN: &str = r#"
        % the context-sensitive showcase grammar
        start -> as bs cs {
            :- size(X)@1, not size(X)@2.
            :- size(X)@2, not size(X)@3.
            :- size(X)@3, not size(X)@1.
        }
        as -> "a" as { size(X + 1) :- size(X)@2. }
        as -> { size(0). }
        bs -> "b" bs { size(X + 1) :- size(X)@2. }
        bs -> { size(0). }
        cs -> "c" cs { size(X + 1) :- size(X)@2. }
        cs -> { size(0). }
    "#;

    #[test]
    fn parses_and_accepts() {
        let g: Asg = ANBNCN.parse().unwrap();
        assert_eq!(g.cfg().production_count(), 7);
        assert!(g.accepts("a a b b c c").unwrap());
        assert!(!g.accepts("a b b c c").unwrap());
    }

    #[test]
    fn annotation_errors_carry_lines() {
        let bad = "s -> \"x\" { this is not asp }";
        let err = bad.parse::<Asg>().unwrap_err();
        assert!(err.to_string().contains("annotation"));
    }

    #[test]
    fn undefined_nonterminal_is_reported() {
        let bad = "s -> missing";
        assert!(bad.parse::<Asg>().is_err());
    }

    #[test]
    fn unterminated_annotation_is_reported() {
        let bad = "s -> \"x\" { a.";
        let err = bad.parse::<Asg>().unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn empty_source_is_rejected() {
        assert!("".parse::<Asg>().is_err());
        assert!("% just a comment".parse::<Asg>().is_err());
    }

    #[test]
    fn weak_constraints_in_annotations_round_trip() {
        let g: Asg = r#"
            policy -> "fast" { mode(fast). :~ congestion. [5@1] }
            policy -> "slow" { mode(slow). }
        "#
        .parse()
        .unwrap();
        let printed = g.to_string();
        assert!(printed.contains(":~ congestion. [5@1]"), "{printed}");
        let again: Asg = printed.parse().unwrap();
        assert_eq!(
            again
                .annotation(crate::cfg::ProdId::from_index(0))
                .weak_constraints()
                .len(),
            1
        );
    }

    #[test]
    fn display_round_trips() {
        let g: Asg = ANBNCN.parse().unwrap();
        let printed = g.to_string();
        let again: Asg = printed.parse().unwrap();
        assert_eq!(g.cfg().production_count(), again.cfg().production_count());
        assert!(again.accepts("a b c").unwrap());
        assert!(!again.accepts("a a b c").unwrap());
    }
}
