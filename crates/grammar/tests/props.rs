//! Property tests: generation and parsing are mutually consistent, ASG
//! membership is sound w.r.t. the underlying CFG, and annotated languages
//! are subsets of their CFG languages.

use agenp_grammar::{Asg, Cfg, EarleyParser, GenOptions, Generator, ParseTree};
use proptest::prelude::*;

const ANBNCN: &str = r#"
    start -> as bs cs {
        :- size(X)@1, not size(X)@2.
        :- size(X)@2, not size(X)@3.
        :- size(X)@3, not size(X)@1.
    }
    as -> "a" as { size(X + 1) :- size(X)@2. }
    as -> { size(0). }
    bs -> "b" bs { size(X + 1) :- size(X)@2. }
    bs -> { size(0). }
    cs -> "c" cs { size(X + 1) :- size(X)@2. }
    cs -> { size(0). }
"#;

fn asg() -> Asg {
    ANBNCN.parse().expect("showcase grammar parses")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// a^i b^j c^k is accepted iff i == j == k.
    #[test]
    fn anbncn_characterization(i in 0usize..4, j in 0usize..4, k in 0usize..4) {
        let g = asg();
        let s = format!(
            "{} {} {}",
            vec!["a"; i].join(" "),
            vec!["b"; j].join(" "),
            vec!["c"; k].join(" ")
        );
        let accepted = g.accepts(s.trim()).unwrap();
        prop_assert_eq!(accepted, i == j && j == k, "string: {}", s);
    }

    /// Every generated tree of the underlying CFG parses back to a forest
    /// containing an equal-yield tree.
    #[test]
    fn generation_parsing_consistency(depth in 1usize..6) {
        let g = asg();
        let gen = Generator::new(g.cfg());
        let parser = EarleyParser::new(g.cfg());
        for tree in gen.trees(GenOptions { max_depth: depth, max_trees: 64 }) {
            let tokens = tree.tokens();
            let forest = parser.parse(&tokens);
            prop_assert!(!forest.is_empty());
            prop_assert!(forest.iter().all(|t| t.tokens() == tokens));
        }
    }

    /// L(G) ⊆ L(G_CF): every string admitted by the ASG is recognized by the
    /// plain CFG.
    #[test]
    fn asg_language_subset_of_cfg(depth in 1usize..6) {
        let g = asg();
        let parser = EarleyParser::new(g.cfg());
        for s in g.language(GenOptions { max_depth: depth, max_trees: 256 }).unwrap() {
            prop_assert!(parser.recognize(&Cfg::tokenize(&s)));
        }
    }

    /// Tree programs only mention traces that exist in the tree.
    #[test]
    fn tree_program_traces_are_tree_nodes(depth in 2usize..6) {
        let g = asg();
        let gen = Generator::new(g.cfg());
        for tree in gen.trees(GenOptions { max_depth: depth, max_trees: 32 }) {
            let mut traces = Vec::new();
            tree.visit_nodes(|_, t| traces.push(t.clone()));
            let program = g.tree_program(&tree);
            for rule in program.rules() {
                if let Some(h) = &rule.head {
                    prop_assert!(
                        traces.contains(&h.trace) || !h.trace.is_root(),
                        "head {h} at unexpected trace"
                    );
                }
            }
        }
    }
}

#[test]
fn admitted_trees_is_filtered_generation() {
    let g = asg();
    let opts = GenOptions {
        max_depth: 5,
        max_trees: 4096,
    };
    let all = Generator::new(g.cfg()).trees(opts);
    let admitted = g.admitted_trees(opts).unwrap();
    assert!(admitted.len() < all.len());
    let admitted_texts: Vec<String> = admitted.iter().map(ParseTree::text).collect();
    for t in &all {
        let ok = g.tree_admitted(t).unwrap();
        assert_eq!(ok, admitted_texts.contains(&t.text()), "tree {}", t.text());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The grammar-text parser never panics on arbitrary input.
    #[test]
    fn grammar_parser_never_panics(src in "[ -~\\n]{0,120}") {
        let _ = src.parse::<Asg>();
    }

    /// Grammar token soup never panics.
    #[test]
    fn grammar_token_soup_never_panics(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("->"), Just("s"), Just("t"), Just("\"x\""),
                Just("{"), Just("}"), Just(":- a."), Just("a."), Just("%c\n"),
            ],
            0..20,
        )
    ) {
        let src = parts.join(" ");
        let _ = src.parse::<Asg>();
    }
}
