//! Degraded-mode transition test: an AMS whose refreshes keep failing
//! must walk DenyByDefault → ServeLastGood → healthy without ever
//! panicking, ever serving a stale epoch, or ever missing a "degraded"
//! flight-recorder dump.
//!
//! Single-test file on purpose: the obs subsystem is a process-global
//! singleton, and this test needs exclusive ownership of its exporter to
//! count dumps deterministically.

use agenp_asp::{Exhausted, RunBudget};
use agenp_core::arch::{Ams, DegradedMode};
use agenp_grammar::{Asg, ProdId};
use agenp_learn::HypothesisSpace;
use agenp_obs::{MemoryExporter, ObsConfig};
use agenp_policy::{Decision, Enforcement, Request};

fn gate() -> (Asg, HypothesisSpace) {
    let g: Asg = r#"
        policy -> effect "if" "subject" "clearance" "=" level
        effect -> "permit" { e(permit). }
        effect -> "deny"   { e(deny). }
        level -> "low"  { lvl(low). }
        level -> "high" { lvl(high). }
    "#
    .parse()
    .unwrap();
    let space = HypothesisSpace::from_texts(&[
        (ProdId::from_index(1), ":- lockdown."),
        (ProdId::from_index(2), ":- not lockdown."),
    ]);
    (g, space)
}

fn degraded_dumps(exporter: &MemoryExporter) -> usize {
    exporter
        .exports()
        .iter()
        .filter(|doc| doc.contains("\"trigger\": \"degraded\""))
        .count()
}

#[test]
fn degraded_transitions_never_panic_and_never_serve_stale() {
    agenp_obs::install(ObsConfig::enabled());
    let exporter = MemoryExporter::new();
    agenp_obs::set_exporter(Box::new(exporter.clone()));

    let (g, space) = gate();
    let mut ams = Ams::new("delta", g, space);
    let req = Request::new().subject("clearance", "high");

    // ---- Phase 1: DenyByDefault under repeated refresh failures. ----
    // An atom budget of 1 makes every generation attempt fail with a
    // typed exhaustion error.
    ams.set_run_budget(RunBudget::default().with_max_atoms(1));
    for round in 0..3 {
        let err = ams.refresh_policies().unwrap_err();
        assert_eq!(err.exhaustion(), Some(Exhausted::Atoms), "round {round}");
        assert_eq!(
            degraded_dumps(&exporter),
            round + 1,
            "round {round}: each failed refresh must dump a \"degraded\" snapshot"
        );
        // Every decision while degraded is a deny that carries the
        // upstream error and the *current* snapshot's epoch — serving a
        // snapshot other than the published one would be a stale serve.
        let current = ams.current_snapshot();
        assert!(current.is_degraded(), "round {round}");
        let outcome = ams.decide(&req);
        assert_eq!(outcome.decision, Decision::Deny, "round {round}");
        assert_eq!(
            outcome.enforcement,
            Some(Enforcement::Blocked),
            "round {round}"
        );
        assert_eq!(
            outcome.error.as_ref().and_then(|e| e.exhaustion()),
            Some(Exhausted::Atoms),
            "round {round}: deny must carry the refresh failure"
        );
        assert_eq!(
            outcome.epoch,
            ams.current_snapshot().epoch(),
            "round {round}: served epoch lags the published snapshot"
        );
    }

    // ---- Phase 2: ServeLastGood keeps the last good snapshot. ----
    // Recover once so there is a good snapshot to pin, then switch
    // modes and fail refreshes again.
    ams.set_run_budget(RunBudget::default());
    assert_eq!(ams.refresh_policies().unwrap().len(), 4);
    assert!(!ams.current_snapshot().is_degraded());
    let good_epoch = ams.current_snapshot().epoch();
    let dumps_after_recovery = degraded_dumps(&exporter);

    ams.set_degraded_mode(DegradedMode::ServeLastGood);
    ams.set_run_budget(RunBudget::default().with_max_atoms(1));
    for round in 0..3 {
        assert!(ams.refresh_policies().is_err(), "round {round}");
        assert_eq!(
            degraded_dumps(&exporter),
            dumps_after_recovery + round + 1,
            "round {round}: ServeLastGood failures still dump for post-mortems"
        );
        let outcome = ams.decide(&req);
        // permit+deny rules under deny-overrides → Deny, but healthily:
        // no error, the pinned good epoch, no degraded snapshot.
        assert_eq!(outcome.decision, Decision::Deny, "round {round}");
        assert!(
            outcome.error.is_none(),
            "round {round}: last-good serve degraded"
        );
        assert_eq!(
            outcome.epoch, good_epoch,
            "round {round}: epoch moved under ServeLastGood"
        );
        assert!(!ams.current_snapshot().is_degraded(), "round {round}");
    }

    // ---- Phase 3: recovery back to healthy serving. ----
    ams.set_run_budget(RunBudget::default());
    assert_eq!(ams.refresh_policies().unwrap().len(), 4);
    let outcome = ams.decide(&req);
    assert!(outcome.error.is_none());
    assert!(!ams.current_snapshot().is_degraded());
    assert!(
        outcome.epoch > good_epoch,
        "recovery must publish a strictly newer epoch"
    );
    // Recovery itself must not be counted as a degradation.
    assert_eq!(degraded_dumps(&exporter), dumps_after_recovery + 3);
}
