//! The Policy Refinement Point (paper §III-A): takes the PBMS-provided
//! characterization of the policy space (a CFG plus high-level constraints,
//! i.e. an ASG) and the current context, and *generates* the concrete
//! policies the AMS will operate with.

use agenp_asp::{Program, RunBudget};
use agenp_grammar::{Asg, AsgError, GenOptions};
use agenp_policy::{rule_from_text, CombiningAlg, Policy, PolicyRule};
use std::fmt;

/// Translates generated policy strings into enforceable [`Policy`] objects.
///
/// The canonical translator understands the `agenp-policy` textual form;
/// scenarios provide their own translators for domain-specific languages.
///
/// `Send + Sync` so the AMS embedding the translator stays shareable
/// across the serving tier's threads.
pub trait PolicyTranslator: fmt::Debug + Send + Sync {
    /// Translates one generated string; `None` if the string is
    /// informational only (not directly enforceable).
    fn translate(&self, text: &str, id: &str) -> Option<PolicyRule>;
}

/// Translator for the canonical `permit/deny if …` textual form.
#[derive(Clone, Copy, Debug, Default)]
pub struct CanonicalTranslator;

impl PolicyTranslator for CanonicalTranslator {
    fn translate(&self, text: &str, id: &str) -> Option<PolicyRule> {
        rule_from_text(id, text).ok()
    }
}

/// Adapter turning a plain function into a [`PolicyTranslator`], for
/// scenario-specific policy languages.
///
/// ```
/// use agenp_core::arch::{FnTranslator, PolicyTranslator};
/// use agenp_policy::{Cond, Category, Effect, PolicyRule};
///
/// let t = FnTranslator(|text, id| {
///     let task = text.strip_prefix("accept ")?;
///     Some(PolicyRule::new(
///         id,
///         Effect::Permit,
///         Cond::eq(Category::Action, "task", task),
///     ))
/// });
/// assert!(t.translate("accept park", "r0").is_some());
/// assert!(t.translate("reject park", "r0").is_none());
/// ```
pub struct FnTranslator(pub fn(&str, &str) -> Option<PolicyRule>);

impl std::fmt::Debug for FnTranslator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("FnTranslator(..)")
    }
}

impl PolicyTranslator for FnTranslator {
    fn translate(&self, text: &str, id: &str) -> Option<PolicyRule> {
        (self.0)(text, id)
    }
}

/// The Policy Refinement Point.
#[derive(Clone, Copy, Debug)]
pub struct Prep {
    /// Generation bounds used when enumerating the GPM's language.
    pub gen_options: GenOptions,
    /// Resource budget (atoms, steps, deadline) applied to every
    /// generation run.
    pub budget: RunBudget,
}

impl Default for Prep {
    fn default() -> Prep {
        Prep {
            gen_options: GenOptions {
                max_depth: 10,
                max_trees: 20_000,
            },
            budget: RunBudget::default(),
        }
    }
}

impl Prep {
    /// A PReP with default bounds.
    pub fn new() -> Prep {
        Prep::default()
    }

    /// Generates the policy strings admitted by `gpm` under `context` —
    /// the language `L(G(C))` up to the generation bounds.
    ///
    /// # Errors
    ///
    /// Propagates grounding failures from annotation programs, and
    /// [`AsgError::Exhausted`] when the configured budget runs out.
    pub fn generate(&self, gpm: &Asg, context: &Program) -> Result<Vec<String>, AsgError> {
        gpm.with_context(context)
            .language_within(self.gen_options, &self.budget)
    }

    /// Generates and translates policies into one enforceable [`Policy`].
    ///
    /// # Errors
    ///
    /// Propagates grounding failures.
    pub fn generate_policy(
        &self,
        gpm: &Asg,
        context: &Program,
        translator: &dyn PolicyTranslator,
        policy_id: &str,
        combining: CombiningAlg,
    ) -> Result<Policy, AsgError> {
        let strings = self.generate(gpm, context)?;
        let rules: Vec<PolicyRule> = strings
            .iter()
            .enumerate()
            .filter_map(|(i, s)| translator.translate(s, &format!("{policy_id}-r{i}")))
            .collect();
        Ok(Policy {
            id: policy_id.to_owned(),
            rules,
            combining,
            obligations: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate_grammar() -> Asg {
        r#"
            policy -> effect "if" "subject" "role" "=" role
            effect -> "permit" { e(permit). }
            effect -> "deny"   { e(deny). }
            role -> "dba"    { :- blocked(dba). }
            role -> "intern" { :- blocked(intern). }
        "#
        .parse()
        .unwrap()
    }

    #[test]
    fn generates_contextual_language() {
        let g = gate_grammar();
        let prep = Prep::new();
        let open: Program = Program::new();
        let all = prep.generate(&g, &open).unwrap();
        assert_eq!(all.len(), 4); // 2 effects × 2 roles
        let blocked: Program = "blocked(intern).".parse().unwrap();
        let some = prep.generate(&g, &blocked).unwrap();
        assert_eq!(some.len(), 2);
        assert!(some.iter().all(|s| s.contains("dba")));
    }

    #[test]
    fn translates_to_enforceable_policy() {
        let g = gate_grammar();
        let prep = Prep::new();
        let blocked: Program = "blocked(intern).".parse().unwrap();
        let policy = prep
            .generate_policy(
                &g,
                &blocked,
                &CanonicalTranslator,
                "p",
                CombiningAlg::DenyOverrides,
            )
            .unwrap();
        assert_eq!(policy.rules.len(), 2);
        let req = agenp_policy::Request::new().subject("role", "dba");
        assert_ne!(policy.evaluate(&req), agenp_policy::Decision::NotApplicable);
    }

    #[test]
    fn canonical_translator_skips_garbage() {
        assert!(CanonicalTranslator.translate("not a policy", "x").is_none());
        assert!(CanonicalTranslator
            .translate("permit if subject role = dba", "x")
            .is_some());
    }
}
