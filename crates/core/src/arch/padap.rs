//! The Policy Adaptation Point (paper §III-A-1): observes the effects of
//! decisions, turns them into context-dependent examples, and re-learns the
//! generative policy model with the ASG learner when the system drifts from
//! its goals or the context changes.

use agenp_asp::Program;
use agenp_grammar::Asg;
use agenp_learn::HypothesisSpace;
use agenp_learn::{Example, Hypothesis, LearnError, Learner, LearningTask};

/// One piece of observed feedback: a policy string that turned out to be
/// valid or invalid in a context.
#[derive(Clone, Debug)]
pub struct Feedback {
    /// The policy string.
    pub policy: String,
    /// The context it was (in)valid under.
    pub context: Program,
    /// True if the policy was appropriate (positive example).
    pub valid: bool,
    /// Optional noise penalty (None = trusted feedback).
    pub penalty: Option<u32>,
}

impl Feedback {
    /// Trusted positive feedback.
    pub fn valid(policy: &str, context: Program) -> Feedback {
        Feedback {
            policy: policy.to_owned(),
            context,
            valid: true,
            penalty: None,
        }
    }

    /// Trusted negative feedback.
    pub fn invalid(policy: &str, context: Program) -> Feedback {
        Feedback {
            policy: policy.to_owned(),
            context,
            valid: false,
            penalty: None,
        }
    }

    /// Marks the feedback as noisy (violable at `penalty`).
    pub fn with_penalty(mut self, penalty: u32) -> Feedback {
        self.penalty = Some(penalty);
        self
    }

    fn example(&self) -> Example {
        let mut e = Example::in_context(self.policy.clone(), self.context.clone());
        if let Some(p) = self.penalty {
            e = e.with_penalty(p);
        }
        e
    }
}

/// The outcome of an adaptation round.
#[derive(Debug)]
pub struct Adaptation {
    /// The re-learned GPM.
    pub gpm: Asg,
    /// The hypothesis that produced it.
    pub hypothesis: Hypothesis,
    /// Number of examples the learner saw.
    pub examples_used: usize,
}

/// The Policy Adaptation Point.
#[derive(Clone, Copy, Debug, Default)]
pub struct Padap {
    learner: Learner,
    /// Use the incremental (relevant-example) driver.
    pub incremental: bool,
}

impl Padap {
    /// A PAdaP with a default learner.
    pub fn new() -> Padap {
        Padap::default()
    }

    /// A PAdaP with an explicit learner.
    pub fn with_learner(learner: Learner) -> Padap {
        Padap {
            learner,
            incremental: false,
        }
    }

    /// Replaces the learner (e.g. to apply a run budget's deadline and
    /// node bounds), keeping the incremental setting.
    pub fn set_learner(&mut self, learner: Learner) {
        self.learner = learner;
    }

    /// Re-learns the GPM from scratch: the *initial* grammar plus all
    /// accumulated feedback. Learning always restarts from the initial
    /// grammar so constraints never stack across rounds.
    ///
    /// # Errors
    ///
    /// Propagates learner failures (unsatisfiable feedback, budget, …).
    pub fn adapt(
        &self,
        initial_gpm: &Asg,
        space: &HypothesisSpace,
        feedback: &[Feedback],
    ) -> Result<Adaptation, LearnError> {
        let mut task = LearningTask::new(initial_gpm.clone(), space.clone());
        for f in feedback {
            if f.valid {
                task = task.pos(f.example());
            } else {
                task = task.neg(f.example());
            }
        }
        let hypothesis = if self.incremental {
            self.learner.learn_incremental(&task)?.0
        } else {
            self.learner.learn(&task)?
        };
        let gpm = hypothesis.apply(initial_gpm);
        Ok(Adaptation {
            gpm,
            hypothesis,
            examples_used: feedback.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agenp_grammar::ProdId;

    #[test]
    fn adaptation_relearns_from_feedback() {
        let initial: Asg = r#"
            policy -> "allow" { act(allow). }
            policy -> "deny"  { act(deny). }
        "#
        .parse()
        .unwrap();
        let space = HypothesisSpace::from_texts(&[
            (ProdId::from_index(0), ":- storm."),
            (ProdId::from_index(1), ":- calm."),
        ]);
        let storm: Program = "storm.".parse().unwrap();
        let calm: Program = "calm.".parse().unwrap();
        let feedback = vec![
            Feedback::invalid("allow", storm.clone()),
            Feedback::valid("deny", storm.clone()),
            Feedback::valid("allow", calm.clone()),
        ];
        let padap = Padap::new();
        let result = padap.adapt(&initial, &space, &feedback).unwrap();
        assert_eq!(result.examples_used, 3);
        assert!(!result.gpm.with_context(&storm).accepts("allow").unwrap());
        assert!(result.gpm.with_context(&calm).accepts("allow").unwrap());
    }

    #[test]
    fn incremental_mode_matches() {
        let initial: Asg = r#"
            policy -> "allow" { act(allow). }
        "#
        .parse()
        .unwrap();
        let space = HypothesisSpace::from_texts(&[(ProdId::from_index(0), ":- storm.")]);
        let storm: Program = "storm.".parse().unwrap();
        let feedback: Vec<Feedback> = (0..6)
            .map(|_| Feedback::invalid("allow", storm.clone()))
            .collect();
        let mut padap = Padap::new();
        padap.incremental = true;
        let result = padap.adapt(&initial, &space, &feedback).unwrap();
        assert!(!result.gpm.with_context(&storm).accepts("allow").unwrap());
    }
}
