//! The Autonomous Management System: one coalition party wiring together
//! PReP, PAdaP, PCP, PIP, the repositories, and the shared-snapshot
//! PDP/PEP decision path (paper Fig. 2; `docs/SERVING.md`).
//!
//! Decision-making is split out of the mutable AMS: every control-plane
//! mutation ([`Ams::adopt_gpm`], [`Ams::set_context`],
//! [`Ams::refresh_policies`], [`Ams::adapt`]) publishes an immutable
//! [`DecisionSnapshot`] through a [`PdpHandle`], and [`Ams::decide`] — a
//! `&self` method — serves against whatever snapshot is current. Worker
//! threads can clone [`Ams::serving_handle`] and decide concurrently while
//! the control loop builds the next snapshot.

use crate::arch::goals::{GoalMonitor, GoalPolicy, GoalViolation};
use crate::arch::padap::{Adaptation, Feedback, Padap};
use crate::arch::pcp::{Pcp, Verdict};
use crate::arch::prep::{CanonicalTranslator, PolicyTranslator, Prep};
use crate::arch::repr::RepresentationsRepository;
use crate::arch::serve::{DecisionOutcome, DecisionSnapshot, PdpHandle};
use agenp_asp::{Exhausted, Program, RunBudget};
use agenp_grammar::{Asg, AsgError};
use agenp_learn::{HypothesisSpace, LearnError, LearnOptions, Learner};
use agenp_policy::{CombiningAlg, Decision, PolicyRepository, QualityReport, Request};
use std::fmt;
use std::sync::Mutex;

/// Errors surfaced by the AMS control loop.
///
/// `Clone` because a degraded [`DecisionSnapshot`] carries the error that
/// degraded it, and every [`DecisionOutcome`] served from that snapshot
/// hands the caller its own copy.
#[derive(Clone, Debug)]
pub enum AmsError {
    /// Policy generation failed.
    Generation(AsgError),
    /// Adaptation (learning) failed.
    Learning(LearnError),
    /// The party cannot serve at all: no valid snapshot exists (fresh
    /// start, state lost in a crash-restart, or the shared repository is
    /// unreachable). Decisions deny by default until a refresh succeeds.
    Unavailable(String),
}

impl fmt::Display for AmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmsError::Generation(e) => write!(f, "policy generation failed: {e}"),
            AmsError::Learning(e) => write!(f, "policy adaptation failed: {e}"),
            AmsError::Unavailable(why) => write!(f, "party unavailable: {why}"),
        }
    }
}

impl AmsError {
    /// The resource-exhaustion kind behind this error, if any. Lets callers
    /// distinguish recoverable budget/deadline overruns (degrade, retry
    /// later) from structural failures (bad grammar, unsatisfiable
    /// feedback).
    pub fn exhaustion(&self) -> Option<Exhausted> {
        match self {
            AmsError::Generation(AsgError::Exhausted(kind)) => Some(*kind),
            AmsError::Generation(AsgError::Ground(g)) => g.exhausted(),
            AmsError::Generation(AsgError::BadProduction(_)) => None,
            AmsError::Learning(LearnError::Exhausted(kind)) => Some(*kind),
            AmsError::Learning(LearnError::Budget) => Some(Exhausted::Nodes),
            AmsError::Learning(LearnError::Ground(g)) => g.exhausted(),
            AmsError::Learning(_) => None,
            AmsError::Unavailable(_) => None,
        }
    }
}

impl std::error::Error for AmsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AmsError::Generation(e) => Some(e),
            AmsError::Learning(e) => Some(e),
            AmsError::Unavailable(_) => None,
        }
    }
}

impl From<AsgError> for AmsError {
    fn from(e: AsgError) -> AmsError {
        AmsError::Generation(e)
    }
}

impl From<LearnError> for AmsError {
    fn from(e: LearnError) -> AmsError {
        AmsError::Learning(e)
    }
}

/// What the serving tier does when a policy refresh fails.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DegradedMode {
    /// Publish a degraded snapshot: every decision renders a fail-safe
    /// [`Decision::Deny`] carrying the refresh error, until a refresh
    /// succeeds. The conservative default.
    #[default]
    DenyByDefault,
    /// Keep serving the last successfully published snapshot, untouched.
    /// Decisions stay consistent (if stale); the refresh error is only
    /// reported to the caller of the failed refresh. Coalition fabrics use
    /// this to ride out transient partner faults (see
    /// `agenp-coalition`).
    ServeLastGood,
}

/// An Autonomous Management System instance.
#[derive(Debug)]
pub struct Ams {
    /// Party name (for coalition interactions and diagnostics).
    pub name: String,
    /// The PBMS-provided initial GPM (CFG + high-level constraints); kept
    /// pristine so adaptation always re-learns from scratch.
    initial_gpm: Asg,
    /// The current (possibly learned) GPM.
    gpm: Asg,
    space: HypothesisSpace,
    repr_repo: RepresentationsRepository,
    policy_repo: PolicyRepository,
    serving: PdpHandle,
    combining: CombiningAlg,
    degraded_mode: DegradedMode,
    prep: Prep,
    padap: Padap,
    pcp: Pcp,
    translator: Box<dyn PolicyTranslator>,
    context: Program,
    feedback: Vec<Feedback>,
    /// Behind a `Mutex` so `decide(&self)` can feed the monitor from any
    /// serving thread; the lock is held only for two counter bumps.
    goals: Mutex<GoalMonitor>,
    budget: RunBudget,
}

impl Ams {
    /// Creates an AMS from the PBMS characterization: the initial grammar
    /// and the hypothesis space the PAdaP may learn within.
    pub fn new(name: &str, initial_gpm: Asg, space: HypothesisSpace) -> Ams {
        let mut repr_repo = RepresentationsRepository::new();
        repr_repo.store(initial_gpm.clone(), "initial");
        let ams = Ams {
            name: name.to_owned(),
            gpm: initial_gpm.clone(),
            initial_gpm,
            space,
            repr_repo,
            policy_repo: PolicyRepository::new(),
            serving: PdpHandle::new(),
            combining: CombiningAlg::DenyOverrides,
            degraded_mode: DegradedMode::default(),
            prep: Prep::new(),
            padap: Padap::new(),
            pcp: Pcp::new(),
            translator: Box::new(CanonicalTranslator),
            context: Program::new(),
            feedback: Vec::new(),
            goals: Mutex::new(GoalMonitor::new(Vec::new(), 32)),
            budget: RunBudget::default(),
        };
        ams.publish_current();
        ams
    }

    /// Applies a [`RunBudget`] to every long-running call the AMS makes:
    /// policy generation (grounding + solving per candidate tree), PCP
    /// screening, membership checks, and adaptation (the learner's node
    /// budget and deadline).
    pub fn set_run_budget(&mut self, budget: RunBudget) {
        self.budget = budget;
        self.prep.budget = budget;
        self.padap.set_learner(Learner::with_options(
            LearnOptions::default()
                .with_deadline(budget.deadline)
                .with_max_nodes(budget.max_nodes),
        ));
    }

    /// The currently configured run budget.
    pub fn run_budget(&self) -> &RunBudget {
        &self.budget
    }

    /// Sets what happens to the serving tier when a refresh fails (see
    /// [`DegradedMode`]).
    pub fn set_degraded_mode(&mut self, mode: DegradedMode) {
        self.degraded_mode = mode;
    }

    /// The configured degraded-mode behavior.
    pub fn degraded_mode(&self) -> DegradedMode {
        self.degraded_mode
    }

    /// A cheap-to-clone, `Send + Sync` handle onto this AMS's serving
    /// tier. Worker threads decide through the handle while the AMS
    /// mutates and republishes; a clone stays wired to this AMS for its
    /// whole life.
    pub fn serving_handle(&self) -> PdpHandle {
        self.serving.clone()
    }

    /// The snapshot currently being served (diagnostics; deciding through
    /// [`Ams::decide`] or a [`PdpHandle`] is the normal path).
    pub fn current_snapshot(&self) -> std::sync::Arc<DecisionSnapshot> {
        self.serving.snapshot()
    }

    /// Installs the PBMS-provided goal policies (paper policy type (ii)),
    /// assessed over a sliding window of `window` decisions.
    pub fn set_goals(&mut self, goals: Vec<GoalPolicy>, window: usize) {
        self.goals = Mutex::new(GoalMonitor::new(goals, window));
    }

    /// The goal monitor (metrics can be fed externally too).
    pub fn goals_mut(&mut self) -> &mut GoalMonitor {
        self.goals.get_mut().expect("goal monitor poisoned")
    }

    /// Unmet goals right now.
    pub fn goal_violations(&self) -> Vec<GoalViolation> {
        self.goals
            .lock()
            .expect("goal monitor poisoned")
            .violations()
    }

    /// The Fig. 2 trigger: adapt only when the system is not meeting its
    /// goals. Returns `None` when all goals are met (no adaptation ran).
    ///
    /// # Errors
    ///
    /// Propagates adaptation failures.
    pub fn adapt_if_off_goal(&mut self) -> Result<Option<Adaptation>, AmsError> {
        if !self.goals_mut().adaptation_needed() {
            return Ok(None);
        }
        let adaptation = self.adapt()?;
        self.goals_mut().reset();
        Ok(Some(adaptation))
    }

    /// Replaces the policy-string translator.
    pub fn set_translator(&mut self, t: Box<dyn PolicyTranslator>) {
        self.translator = t;
    }

    /// The PCP, for registering restrictions.
    pub fn pcp_mut(&mut self) -> &mut Pcp {
        &mut self.pcp
    }

    /// Updates the current context (normally fed by the PIP) and publishes
    /// a snapshot so in-flight deciders see the policies and context move
    /// together.
    pub fn set_context(&mut self, context: Program) {
        self.context = context;
        self.publish_current();
    }

    /// The current context.
    pub fn context(&self) -> &Program {
        &self.context
    }

    /// The current GPM.
    pub fn gpm(&self) -> &Asg {
        &self.gpm
    }

    /// Replaces the current GPM directly (e.g. when adopting a model shared
    /// by a trusted coalition partner), records it, and publishes a
    /// snapshot.
    pub fn adopt_gpm(&mut self, gpm: Asg, note: &str) {
        self.repr_repo.store(gpm.clone(), note);
        self.gpm = gpm;
        self.publish_current();
    }

    /// The representations repository (GPM versions).
    pub fn representations(&self) -> &RepresentationsRepository {
        &self.repr_repo
    }

    /// The policy repository.
    pub fn policies(&self) -> &PolicyRepository {
        &self.policy_repo
    }

    /// Builds a snapshot of the current state and publishes it; returns the
    /// assigned epoch.
    fn publish_current(&self) -> u64 {
        self.serving.publish(
            DecisionSnapshot::new(self.policy_repo.policies().to_vec(), self.combining)
                .with_gpm(self.gpm.clone())
                .with_context(self.context.clone()),
        )
    }

    /// PReP step: regenerates the policy repository from the current GPM
    /// and context, screening candidates through the PCP under the run
    /// budget, and publishes the result as a new snapshot. Returns the
    /// generated strings with their verdicts.
    ///
    /// On failure the serving tier degrades per [`DegradedMode`]:
    /// deny-by-default publishes a denying snapshot carrying the error;
    /// serve-last-good leaves the previous snapshot in place.
    ///
    /// # Errors
    ///
    /// [`AmsError::Generation`] on grounding failures.
    pub fn refresh_policies(&mut self) -> Result<Vec<(String, Verdict)>, AmsError> {
        let mut span = agenp_obs::span!("ams.refresh");
        match self.try_refresh() {
            Ok(screened) => {
                span.record("screened", screened.len());
                self.publish_current();
                Ok(screened)
            }
            Err(e) => {
                span.record("error", true);
                span.record(
                    "degraded_mode",
                    match self.degraded_mode {
                        DegradedMode::DenyByDefault => "deny_by_default",
                        DegradedMode::ServeLastGood => "serve_last_good",
                    },
                );
                if self.degraded_mode == DegradedMode::DenyByDefault {
                    self.serving.publish(
                        DecisionSnapshot::new(self.policy_repo.policies().to_vec(), self.combining)
                            .with_gpm(self.gpm.clone())
                            .with_context(self.context.clone())
                            .degraded(e.clone()),
                    );
                }
                // A degraded-mode transition is exactly when an operator
                // wants the telemetry that led up to it: flush the flight
                // recorder through the installed exporter, if any.
                drop(span);
                agenp_obs::dump_if_enabled("degraded");
                Err(e)
            }
        }
    }

    fn try_refresh(&mut self) -> Result<Vec<(String, Verdict)>, AmsError> {
        let strings = self.prep.generate(&self.gpm, &self.context)?;
        let screened = self
            .pcp
            .screen_within(&self.gpm, &self.context, &strings, &self.budget)?;
        let accepted: Vec<String> = screened
            .iter()
            .filter(|(_, v)| *v == Verdict::Accepted)
            .map(|(s, _)| s.clone())
            .collect();
        let rules: Vec<agenp_policy::PolicyRule> = accepted
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                self.translator
                    .translate(s, &format!("{}-r{}", self.name, i))
            })
            .collect();
        self.policy_repo.replace_all(vec![agenp_policy::Policy {
            id: format!("{}-generated", self.name),
            rules,
            combining: CombiningAlg::DenyOverrides,
            obligations: Vec::new(),
        }]);
        Ok(screened)
    }

    /// PDP + PEP step: decides a request against the currently served
    /// snapshot — policies, enforcement, degradation error, and cache
    /// diagnostics in one [`DecisionOutcome`]. A `&self` method: any
    /// number of threads may call it (or [`PdpHandle::decide`] on a cloned
    /// handle) concurrently with control-plane mutations. The outcome
    /// feeds the goal monitor (`grant_rate`, `gap_rate`).
    pub fn decide(&self, request: &Request) -> DecisionOutcome {
        let outcome = self.serving.decide(request);
        let mut goals = self.goals.lock().expect("goal monitor poisoned");
        goals.observe_bool("grant_rate", outcome.decision == Decision::Permit);
        goals.observe_bool(
            "gap_rate",
            matches!(
                outcome.decision,
                Decision::NotApplicable | Decision::Indeterminate
            ),
        );
        outcome
    }

    /// Batched PDP + PEP step: every request in the slice is decided
    /// against **one** snapshot (see [`PdpHandle::decide_batch`] for the
    /// consistency contract), duplicates answered once, and the goal
    /// monitor fed under a single lock acquisition instead of one per
    /// request.
    pub fn decide_batch(&self, requests: &[Request]) -> Vec<DecisionOutcome> {
        let outcomes = self.serving.decide_batch(requests);
        let mut goals = self.goals.lock().expect("goal monitor poisoned");
        for outcome in &outcomes {
            goals.observe_bool("grant_rate", outcome.decision == Decision::Permit);
            goals.observe_bool(
                "gap_rate",
                matches!(
                    outcome.decision,
                    Decision::NotApplicable | Decision::Indeterminate
                ),
            );
        }
        outcomes
    }

    /// Records observed feedback for the next adaptation round.
    pub fn observe(&mut self, feedback: Feedback) {
        self.feedback.push(feedback);
    }

    /// Number of buffered feedback observations.
    pub fn feedback_len(&self) -> usize {
        self.feedback.len()
    }

    /// PAdaP step: re-learns the GPM from the initial grammar plus all
    /// accumulated feedback, stores the new version, and regenerates (and
    /// republishes) policies.
    ///
    /// # Errors
    ///
    /// [`AmsError::Learning`] if the feedback admits no hypothesis;
    /// [`AmsError::Generation`] if regeneration fails.
    pub fn adapt(&mut self) -> Result<Adaptation, AmsError> {
        let _span = agenp_obs::span!("ams.adapt", observations = self.feedback.len());
        let adaptation = self
            .padap
            .adapt(&self.initial_gpm, &self.space, &self.feedback)?;
        self.gpm = adaptation.gpm.clone();
        self.repr_repo.store(
            self.gpm.clone(),
            &format!("adapted from {} observations", self.feedback.len()),
        );
        self.refresh_policies()?;
        Ok(adaptation)
    }

    /// Quality assessment of the current policy repository over a request
    /// space (PCP Quality Checker).
    pub fn quality(&self, space: &[Request]) -> QualityReport {
        self.pcp.assess(self.policy_repo.policies(), space)
    }

    /// Does the current GPM admit `policy` under the current context?
    ///
    /// # Errors
    ///
    /// [`AmsError::Generation`] on grounding failures.
    pub fn admits(&self, policy: &str) -> Result<bool, AmsError> {
        Ok(self
            .gpm
            .with_context(&self.context)
            .accepts_within(policy, &self.budget)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agenp_grammar::ProdId;
    use agenp_policy::Enforcement;

    fn gate() -> (Asg, HypothesisSpace) {
        let g: Asg = r#"
            policy -> effect "if" "subject" "clearance" "=" level
            effect -> "permit" { e(permit). }
            effect -> "deny"   { e(deny). }
            level -> "low"  { lvl(low). }
            level -> "high" { lvl(high). }
        "#
        .parse()
        .unwrap();
        let space = HypothesisSpace::from_texts(&[
            (ProdId::from_index(1), ":- lockdown."),
            (ProdId::from_index(2), ":- not lockdown."),
        ]);
        (g, space)
    }

    #[test]
    fn full_loop_generates_decides_adapts() {
        let (g, space) = gate();
        let mut ams = Ams::new("alpha", g, space);
        // Initially everything is generated.
        let screened = ams.refresh_policies().unwrap();
        assert_eq!(screened.len(), 4);
        let req = Request::new().subject("clearance", "high");
        let d0 = ams.decide(&req);
        // Both permit and deny rules exist → deny-overrides → Deny.
        assert_eq!(d0.decision(), Decision::Deny);
        assert!(d0.error.is_none());

        // Feedback: under lockdown, permits are invalid.
        let lockdown: Program = "lockdown.".parse().unwrap();
        ams.set_context(lockdown.clone());
        ams.observe(Feedback::invalid(
            "permit if subject clearance = high",
            lockdown.clone(),
        ));
        ams.observe(Feedback::invalid(
            "permit if subject clearance = low",
            lockdown.clone(),
        ));
        ams.observe(Feedback::valid(
            "deny if subject clearance = high",
            lockdown.clone(),
        ));
        let adaptation = ams.adapt().unwrap();
        assert!(!adaptation.hypothesis.rules.is_empty());
        // Under lockdown only deny policies remain.
        assert!(!ams.admits("permit if subject clearance = high").unwrap());
        assert!(ams.admits("deny if subject clearance = high").unwrap());
        let outcome = ams.decide(&req);
        assert_eq!(outcome.decision, Decision::Deny);
        assert_eq!(outcome.enforcement, Some(Enforcement::Blocked));
        // Version history: initial + adapted.
        assert_eq!(ams.representations().len(), 2);
    }

    #[test]
    fn budget_exhaustion_is_recoverable_and_denies_by_default() {
        let (g, space) = gate();
        let mut ams = Ams::new("gamma", g, space);
        // An absurdly small atom budget: generation must fail with a typed
        // exhaustion error, never a panic.
        ams.set_run_budget(RunBudget::default().with_max_atoms(1));
        let err = ams.refresh_policies().unwrap_err();
        assert_eq!(err.exhaustion(), Some(Exhausted::Atoms));
        // The failed refresh published a degraded snapshot: decisions deny
        // by default and carry the error.
        let req = Request::new().subject("clearance", "high");
        let outcome = ams.decide(&req);
        assert_eq!(outcome.decision, Decision::Deny);
        assert_eq!(outcome.enforcement, Some(Enforcement::Blocked));
        assert_eq!(
            outcome.error.as_ref().and_then(AmsError::exhaustion),
            Some(Exhausted::Atoms)
        );
        assert!(ams.current_snapshot().is_degraded());
        // Restoring a sane budget recovers fully.
        ams.set_run_budget(RunBudget::default());
        assert_eq!(ams.refresh_policies().unwrap().len(), 4);
        let outcome = ams.decide(&req);
        assert_eq!(outcome.decision, Decision::Deny); // permit+deny under deny-overrides
        assert!(outcome.error.is_none());
        assert!(!ams.current_snapshot().is_degraded());
    }

    #[test]
    fn serve_last_good_keeps_the_previous_snapshot() {
        let (g, space) = gate();
        let mut ams = Ams::new("zeta", g, space);
        ams.set_degraded_mode(DegradedMode::ServeLastGood);
        ams.refresh_policies().unwrap();
        let good_epoch = ams.current_snapshot().epoch();
        let req = Request::new().subject("clearance", "high");
        assert_eq!(ams.decide(&req).decision(), Decision::Deny); // permit+deny combine

        // A refresh that fails must leave the good snapshot serving.
        ams.set_run_budget(RunBudget::default().with_max_atoms(1));
        assert!(ams.refresh_policies().is_err());
        let outcome = ams.decide(&req);
        assert_eq!(outcome.epoch, good_epoch, "snapshot must not have moved");
        assert_eq!(outcome.decision, Decision::Deny);
        assert!(
            outcome.error.is_none(),
            "last-good snapshot is not degraded"
        );
        assert!(!ams.current_snapshot().is_degraded());
    }

    #[test]
    fn serve_last_good_survives_consecutive_failed_refreshes() {
        let (g, space) = gate();
        let mut ams = Ams::new("theta", g, space);
        ams.set_degraded_mode(DegradedMode::ServeLastGood);
        ams.refresh_policies().unwrap();
        let good_epoch = ams.current_snapshot().epoch();
        let req = Request::new().subject("clearance", "high");

        // Three refreshes in a row fail; the last-good snapshot must keep
        // serving unchanged through all of them.
        ams.set_run_budget(RunBudget::default().with_max_atoms(1));
        for round in 0..3 {
            let err = ams.refresh_policies().unwrap_err();
            // Each failure surfaces the full error chain: AmsError →
            // AsgError → the typed exhaustion kind.
            assert_eq!(err.exhaustion(), Some(Exhausted::Atoms), "round {round}");
            let source = std::error::Error::source(&err)
                .expect("AmsError must expose its cause through source()");
            assert!(
                source.to_string().contains("atom"),
                "round {round}: {source}"
            );
            let outcome = ams.decide(&req);
            assert_eq!(
                outcome.epoch, good_epoch,
                "round {round}: epoch moved under ServeLastGood"
            );
            assert_eq!(outcome.decision, Decision::Deny);
            assert!(outcome.error.is_none(), "round {round}: snapshot degraded");
            assert!(!ams.current_snapshot().is_degraded());
        }

        // Recovery publishes a strictly newer epoch (monotonicity), and the
        // epoch counter advanced exactly once despite three failures.
        ams.set_run_budget(RunBudget::default());
        ams.refresh_policies().unwrap();
        let recovered = ams.current_snapshot().epoch();
        assert_eq!(
            recovered,
            good_epoch + 1,
            "failed ServeLastGood refreshes must not burn epochs"
        );
        assert!(ams.decide(&req).error.is_none());
    }

    #[test]
    fn solver_step_exhaustion_propagates_through_admits() {
        // A non-stratified annotation forces the DPLL search path, where a
        // zero step budget fires immediately.
        let g: Asg = r#"
            policy -> "allow" { p :- not q. q :- not p. }
        "#
        .parse()
        .unwrap();
        let mut ams = Ams::new("delta", g, HypothesisSpace::new());
        assert!(ams.admits("allow").unwrap());
        ams.set_run_budget(RunBudget::default().with_max_steps(0));
        let err = ams.admits("allow").unwrap_err();
        assert_eq!(err.exhaustion(), Some(Exhausted::Steps));
    }

    #[test]
    fn snapshot_swaps_are_visible_through_cloned_handles() {
        let (g, space) = gate();
        let mut ams = Ams::new("eta", g, space);
        let handle = ams.serving_handle();
        let req = Request::new().subject("clearance", "high");
        // Before any refresh: no policies → NotApplicable.
        assert_eq!(handle.decide(&req).decision, Decision::NotApplicable);
        ams.refresh_policies().unwrap();
        // Same handle, no re-wiring: the new snapshot is already visible
        // and the stale cached NotApplicable is not served.
        let outcome = handle.decide(&req);
        assert_eq!(outcome.decision, Decision::Deny);
        assert!(!outcome.cached);
    }

    #[test]
    fn quality_assessment_runs() {
        let (g, space) = gate();
        let mut ams = Ams::new("beta", g, space);
        ams.refresh_policies().unwrap();
        let space = vec![
            Request::new().subject("clearance", "high"),
            Request::new().subject("clearance", "low"),
        ];
        let report = ams.quality(&space);
        assert_eq!(report.assessed, 2);
        // permit and deny rules for the same clearance conflict.
        assert!(!report.conflicts.is_empty());
    }
}
