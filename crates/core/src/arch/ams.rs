//! The Autonomous Management System: one coalition party wiring together
//! PReP, PAdaP, PCP, PIP, the repositories, and the PDP/PEP decision path
//! (paper Fig. 2).

use crate::arch::goals::{GoalMonitor, GoalPolicy, GoalViolation};
use crate::arch::padap::{Adaptation, Feedback, Padap};
use crate::arch::pcp::{Pcp, Verdict};
use crate::arch::prep::{CanonicalTranslator, PolicyTranslator, Prep};
use crate::arch::repr::RepresentationsRepository;
use agenp_asp::{Exhausted, Program, RunBudget};
use agenp_grammar::{Asg, AsgError};
use agenp_learn::{HypothesisSpace, LearnError, LearnOptions, Learner};
use agenp_policy::{
    CombiningAlg, Decision, Enforcement, Pdp, Pep, PolicyRepository, QualityReport, Request,
};
use std::fmt;

/// Errors surfaced by the AMS control loop.
#[derive(Debug)]
pub enum AmsError {
    /// Policy generation failed.
    Generation(AsgError),
    /// Adaptation (learning) failed.
    Learning(LearnError),
}

impl fmt::Display for AmsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AmsError::Generation(e) => write!(f, "policy generation failed: {e}"),
            AmsError::Learning(e) => write!(f, "policy adaptation failed: {e}"),
        }
    }
}

impl AmsError {
    /// The resource-exhaustion kind behind this error, if any. Lets callers
    /// distinguish recoverable budget/deadline overruns (degrade, retry
    /// later) from structural failures (bad grammar, unsatisfiable
    /// feedback).
    pub fn exhaustion(&self) -> Option<Exhausted> {
        match self {
            AmsError::Generation(AsgError::Exhausted(kind)) => Some(*kind),
            AmsError::Generation(AsgError::Ground(g)) => g.exhausted(),
            AmsError::Generation(AsgError::BadProduction(_)) => None,
            AmsError::Learning(LearnError::Exhausted(kind)) => Some(*kind),
            AmsError::Learning(LearnError::Budget) => Some(Exhausted::Nodes),
            AmsError::Learning(LearnError::Ground(g)) => g.exhausted(),
            AmsError::Learning(_) => None,
        }
    }
}

impl std::error::Error for AmsError {}

impl From<AsgError> for AmsError {
    fn from(e: AsgError) -> AmsError {
        AmsError::Generation(e)
    }
}

impl From<LearnError> for AmsError {
    fn from(e: LearnError) -> AmsError {
        AmsError::Learning(e)
    }
}

/// An Autonomous Management System instance.
#[derive(Debug)]
pub struct Ams {
    /// Party name (for coalition interactions and diagnostics).
    pub name: String,
    /// The PBMS-provided initial GPM (CFG + high-level constraints); kept
    /// pristine so adaptation always re-learns from scratch.
    initial_gpm: Asg,
    /// The current (possibly learned) GPM.
    gpm: Asg,
    space: HypothesisSpace,
    repr_repo: RepresentationsRepository,
    policy_repo: PolicyRepository,
    pdp: Pdp,
    pep: Pep,
    prep: Prep,
    padap: Padap,
    pcp: Pcp,
    translator: Box<dyn PolicyTranslator>,
    context: Program,
    feedback: Vec<Feedback>,
    goals: GoalMonitor,
    budget: RunBudget,
}

impl Ams {
    /// Creates an AMS from the PBMS characterization: the initial grammar
    /// and the hypothesis space the PAdaP may learn within.
    pub fn new(name: &str, initial_gpm: Asg, space: HypothesisSpace) -> Ams {
        let mut repr_repo = RepresentationsRepository::new();
        repr_repo.store(initial_gpm.clone(), "initial");
        Ams {
            name: name.to_owned(),
            gpm: initial_gpm.clone(),
            initial_gpm,
            space,
            repr_repo,
            policy_repo: PolicyRepository::new(),
            pdp: Pdp::new(CombiningAlg::DenyOverrides),
            pep: Pep::default(),
            prep: Prep::new(),
            padap: Padap::new(),
            pcp: Pcp::new(),
            translator: Box::new(CanonicalTranslator),
            context: Program::new(),
            feedback: Vec::new(),
            goals: GoalMonitor::new(Vec::new(), 32),
            budget: RunBudget::default(),
        }
    }

    /// Applies a [`RunBudget`] to every long-running call the AMS makes:
    /// policy generation (grounding + solving per candidate tree),
    /// membership checks, and adaptation (the learner's node budget and
    /// deadline).
    pub fn set_run_budget(&mut self, budget: RunBudget) {
        self.budget = budget;
        self.prep.budget = budget;
        self.padap.set_learner(Learner::with_options(LearnOptions {
            deadline: budget.deadline,
            max_nodes: budget.max_nodes,
            ..LearnOptions::default()
        }));
    }

    /// The currently configured run budget.
    pub fn run_budget(&self) -> &RunBudget {
        &self.budget
    }

    /// Installs the PBMS-provided goal policies (paper policy type (ii)),
    /// assessed over a sliding window of `window` decisions.
    pub fn set_goals(&mut self, goals: Vec<GoalPolicy>, window: usize) {
        self.goals = GoalMonitor::new(goals, window);
    }

    /// The goal monitor (metrics can be fed externally too).
    pub fn goals_mut(&mut self) -> &mut GoalMonitor {
        &mut self.goals
    }

    /// Unmet goals right now.
    pub fn goal_violations(&self) -> Vec<GoalViolation> {
        self.goals.violations()
    }

    /// The Fig. 2 trigger: adapt only when the system is not meeting its
    /// goals. Returns `None` when all goals are met (no adaptation ran).
    ///
    /// # Errors
    ///
    /// Propagates adaptation failures.
    pub fn adapt_if_off_goal(&mut self) -> Result<Option<Adaptation>, AmsError> {
        if !self.goals.adaptation_needed() {
            return Ok(None);
        }
        let adaptation = self.adapt()?;
        self.goals.reset();
        Ok(Some(adaptation))
    }

    /// Replaces the policy-string translator.
    pub fn set_translator(&mut self, t: Box<dyn PolicyTranslator>) {
        self.translator = t;
    }

    /// The PCP, for registering restrictions.
    pub fn pcp_mut(&mut self) -> &mut Pcp {
        &mut self.pcp
    }

    /// Updates the current context (normally fed by the PIP).
    pub fn set_context(&mut self, context: Program) {
        self.context = context;
    }

    /// The current context.
    pub fn context(&self) -> &Program {
        &self.context
    }

    /// The current GPM.
    pub fn gpm(&self) -> &Asg {
        &self.gpm
    }

    /// Replaces the current GPM directly (e.g. when adopting a model shared
    /// by a trusted coalition partner) and records it.
    pub fn adopt_gpm(&mut self, gpm: Asg, note: &str) {
        self.repr_repo.store(gpm.clone(), note);
        self.gpm = gpm;
    }

    /// The representations repository (GPM versions).
    pub fn representations(&self) -> &RepresentationsRepository {
        &self.repr_repo
    }

    /// The policy repository.
    pub fn policies(&self) -> &PolicyRepository {
        &self.policy_repo
    }

    /// PReP step: regenerates the policy repository from the current GPM
    /// and context, screening candidates through the PCP. Returns the
    /// generated strings with their verdicts.
    ///
    /// # Errors
    ///
    /// [`AmsError::Generation`] on grounding failures.
    pub fn refresh_policies(&mut self) -> Result<Vec<(String, Verdict)>, AmsError> {
        let strings = self.prep.generate(&self.gpm, &self.context)?;
        let screened = self.pcp.screen(&self.gpm, &self.context, &strings)?;
        let accepted: Vec<String> = screened
            .iter()
            .filter(|(_, v)| *v == Verdict::Accepted)
            .map(|(s, _)| s.clone())
            .collect();
        let rules: Vec<agenp_policy::PolicyRule> = accepted
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                self.translator
                    .translate(s, &format!("{}-r{}", self.name, i))
            })
            .collect();
        self.policy_repo.replace_all(vec![agenp_policy::Policy {
            id: format!("{}-generated", self.name),
            rules,
            combining: CombiningAlg::DenyOverrides,
        }]);
        Ok(screened)
    }

    /// PDP step: decides a request against the generated policies. The
    /// outcome feeds the goal monitor (`grant_rate`, `gap_rate`).
    pub fn decide(&mut self, request: &Request) -> Decision {
        let d = self.pdp.decide(&self.policy_repo, request);
        self.goals.observe_bool("grant_rate", d == Decision::Permit);
        self.goals.observe_bool(
            "gap_rate",
            matches!(d, Decision::NotApplicable | Decision::Indeterminate),
        );
        d
    }

    /// PEP step: decides and enforces.
    pub fn decide_and_enforce(&mut self, request: &Request) -> (Decision, Enforcement) {
        let d = self.decide(request);
        (d, self.pep.enforce(d))
    }

    /// Records observed feedback for the next adaptation round.
    pub fn observe(&mut self, feedback: Feedback) {
        self.feedback.push(feedback);
    }

    /// Number of buffered feedback observations.
    pub fn feedback_len(&self) -> usize {
        self.feedback.len()
    }

    /// PAdaP step: re-learns the GPM from the initial grammar plus all
    /// accumulated feedback, stores the new version, and regenerates
    /// policies.
    ///
    /// # Errors
    ///
    /// [`AmsError::Learning`] if the feedback admits no hypothesis;
    /// [`AmsError::Generation`] if regeneration fails.
    pub fn adapt(&mut self) -> Result<Adaptation, AmsError> {
        let adaptation = self
            .padap
            .adapt(&self.initial_gpm, &self.space, &self.feedback)?;
        self.gpm = adaptation.gpm.clone();
        self.repr_repo.store(
            self.gpm.clone(),
            &format!("adapted from {} observations", self.feedback.len()),
        );
        self.refresh_policies()?;
        Ok(adaptation)
    }

    /// Quality assessment of the current policy repository over a request
    /// space (PCP Quality Checker).
    pub fn quality(&self, space: &[Request]) -> QualityReport {
        self.pcp.assess(self.policy_repo.policies(), space)
    }

    /// Does the current GPM admit `policy` under the current context?
    ///
    /// # Errors
    ///
    /// [`AmsError::Generation`] on grounding failures.
    pub fn admits(&self, policy: &str) -> Result<bool, AmsError> {
        Ok(self
            .gpm
            .with_context(&self.context)
            .accepts_within(policy, &self.budget)?)
    }

    /// Degradation-aware decision path: refreshes policies and decides, but
    /// when regeneration fails — e.g. a budget or deadline overrun — falls
    /// back to a deny-by-default decision over the *last good* repository
    /// instead of propagating the error. The error (if any) is returned
    /// alongside so callers can log or retry.
    pub fn decide_resilient(&mut self, request: &Request) -> (Decision, Option<AmsError>) {
        match self.refresh_policies() {
            Ok(_) => (self.decide(request), None),
            Err(e) => (
                self.pdp.decide_degraded(&self.policy_repo, request),
                Some(e),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agenp_grammar::ProdId;

    fn gate() -> (Asg, HypothesisSpace) {
        let g: Asg = r#"
            policy -> effect "if" "subject" "clearance" "=" level
            effect -> "permit" { e(permit). }
            effect -> "deny"   { e(deny). }
            level -> "low"  { lvl(low). }
            level -> "high" { lvl(high). }
        "#
        .parse()
        .unwrap();
        let space = HypothesisSpace::from_texts(&[
            (ProdId::from_index(1), ":- lockdown."),
            (ProdId::from_index(2), ":- not lockdown."),
        ]);
        (g, space)
    }

    #[test]
    fn full_loop_generates_decides_adapts() {
        let (g, space) = gate();
        let mut ams = Ams::new("alpha", g, space);
        // Initially everything is generated.
        let screened = ams.refresh_policies().unwrap();
        assert_eq!(screened.len(), 4);
        let req = Request::new().subject("clearance", "high");
        let d0 = ams.decide(&req);
        // Both permit and deny rules exist → deny-overrides → Deny.
        assert_eq!(d0, Decision::Deny);

        // Feedback: under lockdown, permits are invalid.
        let lockdown: Program = "lockdown.".parse().unwrap();
        ams.set_context(lockdown.clone());
        ams.observe(Feedback::invalid(
            "permit if subject clearance = high",
            lockdown.clone(),
        ));
        ams.observe(Feedback::invalid(
            "permit if subject clearance = low",
            lockdown.clone(),
        ));
        ams.observe(Feedback::valid(
            "deny if subject clearance = high",
            lockdown.clone(),
        ));
        let adaptation = ams.adapt().unwrap();
        assert!(!adaptation.hypothesis.rules.is_empty());
        // Under lockdown only deny policies remain.
        assert!(!ams.admits("permit if subject clearance = high").unwrap());
        assert!(ams.admits("deny if subject clearance = high").unwrap());
        let (d, e) = ams.decide_and_enforce(&req);
        assert_eq!(d, Decision::Deny);
        assert_eq!(e, Enforcement::Blocked);
        // Version history: initial + adapted.
        assert_eq!(ams.representations().len(), 2);
    }

    #[test]
    fn budget_exhaustion_is_recoverable_and_denies_by_default() {
        let (g, space) = gate();
        let mut ams = Ams::new("gamma", g, space);
        // An absurdly small atom budget: generation must fail with a typed
        // exhaustion error, never a panic.
        ams.set_run_budget(RunBudget::default().with_max_atoms(1));
        let err = ams.refresh_policies().unwrap_err();
        assert_eq!(err.exhaustion(), Some(Exhausted::Atoms));
        // The resilient path degrades to deny-by-default.
        let req = Request::new().subject("clearance", "high");
        let (d, e) = ams.decide_resilient(&req);
        assert_eq!(d, Decision::Deny);
        assert!(e.is_some());
        assert_eq!(Pep::default().enforce(d), Enforcement::Blocked);
        // Restoring a sane budget recovers fully.
        ams.set_run_budget(RunBudget::default());
        assert_eq!(ams.refresh_policies().unwrap().len(), 4);
        let (d2, e2) = ams.decide_resilient(&req);
        assert_eq!(d2, Decision::Deny); // permit+deny under deny-overrides
        assert!(e2.is_none());
    }

    #[test]
    fn solver_step_exhaustion_propagates_through_admits() {
        // A non-stratified annotation forces the DPLL search path, where a
        // zero step budget fires immediately.
        let g: Asg = r#"
            policy -> "allow" { p :- not q. q :- not p. }
        "#
        .parse()
        .unwrap();
        let mut ams = Ams::new("delta", g, HypothesisSpace::new());
        assert!(ams.admits("allow").unwrap());
        ams.set_run_budget(RunBudget::default().with_max_steps(0));
        let err = ams.admits("allow").unwrap_err();
        assert_eq!(err.exhaustion(), Some(Exhausted::Steps));
    }

    #[test]
    fn degraded_decisions_are_recorded_in_history() {
        let (g, space) = gate();
        let mut ams = Ams::new("epsilon", g, space);
        ams.set_run_budget(RunBudget::default().with_max_atoms(1));
        let req = Request::new().subject("clearance", "low");
        let (d, err) = ams.decide_resilient(&req);
        assert_eq!(d, Decision::Deny);
        assert!(err.unwrap().exhaustion().is_some());
    }

    #[test]
    fn quality_assessment_runs() {
        let (g, space) = gate();
        let mut ams = Ams::new("beta", g, space);
        ams.refresh_policies().unwrap();
        let space = vec![
            Request::new().subject("clearance", "high"),
            Request::new().subject("clearance", "low"),
        ];
        let report = ams.quality(&space);
        assert_eq!(report.assessed, 2);
        // permit and deny rules for the same clearance conflict.
        assert!(!report.conflicts.is_empty());
    }
}
