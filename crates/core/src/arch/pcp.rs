//! The Policy Checking Point (paper §III-A-2): the Quality Checker assesses
//! generated policies against the four quality requirements; the Violation
//! Detector screens generated (or externally shared) policy strings against
//! pre-defined restriction constraints before they reach the repository.

use agenp_asp::{Program, Rule, RunBudget};
use agenp_grammar::{Asg, AsgError, ProdId};
use agenp_policy::{Policy, QualityChecker, QualityReport, Request};

/// The verdict on one checked policy string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The policy passes all restrictions.
    Accepted,
    /// The policy violates the restrictions (it is not in the restricted
    /// language under the current context).
    Violation,
    /// The policy is not even in the underlying policy language.
    Malformed,
}

/// The Policy Checking Point.
#[derive(Clone, Debug, Default)]
pub struct Pcp {
    checker: QualityChecker,
    /// Restriction rules added on top of any GPM being checked — the
    /// "pre-defined restrictions" of §IV-C (domain-based and target-based).
    restrictions: Vec<(ProdId, Rule)>,
}

impl Pcp {
    /// A PCP with no restrictions.
    pub fn new() -> Pcp {
        Pcp::default()
    }

    /// Adds a restriction rule to screen policies with.
    pub fn add_restriction(&mut self, target: ProdId, rule: Rule) {
        self.restrictions.push((target, rule));
    }

    /// The registered restrictions.
    pub fn restrictions(&self) -> &[(ProdId, Rule)] {
        &self.restrictions
    }

    /// Screens policy strings against the GPM plus restrictions under a
    /// context (the Violation Detector).
    ///
    /// # Errors
    ///
    /// Propagates grounding failures.
    pub fn screen(
        &self,
        gpm: &Asg,
        context: &Program,
        policies: &[String],
    ) -> Result<Vec<(String, Verdict)>, AsgError> {
        self.screen_within(gpm, context, policies, &RunBudget::default())
    }

    /// [`Pcp::screen`] under an explicit [`RunBudget`]: every membership
    /// check (restricted and unrestricted) runs with the budget's atom,
    /// step, and deadline caps, so a pathological candidate cannot stall
    /// the screening pass.
    ///
    /// # Errors
    ///
    /// Propagates grounding failures, including budget exhaustion.
    pub fn screen_within(
        &self,
        gpm: &Asg,
        context: &Program,
        policies: &[String],
        budget: &RunBudget,
    ) -> Result<Vec<(String, Verdict)>, AsgError> {
        let mut span = agenp_obs::span!(
            "core.pcp.screen",
            candidates = policies.len(),
            restrictions = self.restrictions.len(),
        );
        let restricted = gpm
            .with_added_rules(&self.restrictions)?
            .with_context(context);
        let unrestricted = gpm.with_context(context);
        let mut out = Vec::with_capacity(policies.len());
        let (mut accepted, mut violations, mut malformed) = (0u64, 0u64, 0u64);
        for p in policies {
            let verdict = if restricted.accepts_within(p, budget)? {
                accepted += 1;
                Verdict::Accepted
            } else if unrestricted.accepts_within(p, budget)? {
                violations += 1;
                Verdict::Violation
            } else {
                malformed += 1;
                Verdict::Malformed
            };
            out.push((p.clone(), verdict));
        }
        if span.is_live() {
            span.record("accepted", accepted);
            span.record("violations", violations);
            span.record("malformed", malformed);
            let r = agenp_obs::registry();
            r.counter("core.pcp.accepted").add(accepted);
            r.counter("core.pcp.violations").add(violations);
            r.counter("core.pcp.malformed").add(malformed);
        }
        Ok(out)
    }

    /// Assesses enforceable policies against a request space (the Quality
    /// Checker; see [`QualityChecker::assess`]).
    pub fn assess(&self, policies: &[Policy], space: &[Request]) -> QualityReport {
        self.checker.assess(policies, space)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn screening_verdicts() {
        let gpm: Asg = r#"
            policy -> "share" level
            level -> "public" { lvl(0). }
            level -> "secret" { lvl(2). }
        "#
        .parse()
        .unwrap();
        let mut pcp = Pcp::new();
        // Restriction: never share anything above level 1.
        pcp.add_restriction(
            ProdId::from_index(0),
            ":- lvl(X)@2, X > 1.".parse().unwrap(),
        );
        let ctx = Program::new();
        let verdicts = pcp
            .screen(
                &gpm,
                &ctx,
                &[
                    "share public".to_owned(),
                    "share secret".to_owned(),
                    "share everything".to_owned(),
                ],
            )
            .unwrap();
        assert_eq!(verdicts[0].1, Verdict::Accepted);
        assert_eq!(verdicts[1].1, Verdict::Violation);
        assert_eq!(verdicts[2].1, Verdict::Malformed);
        assert_eq!(pcp.restrictions().len(), 1);
    }

    #[test]
    fn screening_respects_the_run_budget() {
        let gpm: Asg = r#"
            policy -> "share" level
            level -> "public" { lvl(0). }
            level -> "secret" { lvl(2). }
        "#
        .parse()
        .unwrap();
        let pcp = Pcp::new();
        let ctx = Program::new();
        let err = pcp
            .screen_within(
                &gpm,
                &ctx,
                &["share public".to_owned()],
                &RunBudget::default().with_max_atoms(0),
            )
            .unwrap_err();
        assert!(
            matches!(err, AsgError::Exhausted(_) | AsgError::Ground(_)),
            "expected a budget error, got {err:?}"
        );
    }
}
