//! Goal-based policies (paper §I, policy type (ii)) and the adaptation
//! trigger of §III-A-1: "Such an update would be triggered if the operation
//! of the system is not meeting the goals set by the global PBMS, or there
//! has been a change in context."
//!
//! A [`GoalPolicy`] directs the managed party to keep a monitored metric on
//! the right side of a threshold (e.g. *maintain a minimum threshold of
//! utilization*); the [`GoalMonitor`] aggregates metric observations over a
//! sliding window and reports which goals are unmet, which the AMS uses to
//! decide when the PAdaP must re-learn.

use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Which side of the threshold the metric must stay on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GoalDirection {
    /// The windowed metric must be at least the threshold.
    AtLeast,
    /// The windowed metric must be at most the threshold.
    AtMost,
}

/// A goal-based policy over a named metric.
#[derive(Clone, Debug)]
pub struct GoalPolicy {
    /// Goal identifier.
    pub id: String,
    /// The monitored metric's name (e.g. `"grant_rate"`, `"violations"`).
    pub metric: String,
    /// Threshold value.
    pub threshold: f64,
    /// Required direction.
    pub direction: GoalDirection,
}

impl GoalPolicy {
    /// A goal requiring the windowed mean of `metric` to be ≥ `threshold`.
    pub fn at_least(id: &str, metric: &str, threshold: f64) -> GoalPolicy {
        GoalPolicy {
            id: id.to_owned(),
            metric: metric.to_owned(),
            threshold,
            direction: GoalDirection::AtLeast,
        }
    }

    /// A goal requiring the windowed mean of `metric` to be ≤ `threshold`.
    pub fn at_most(id: &str, metric: &str, threshold: f64) -> GoalPolicy {
        GoalPolicy {
            id: id.to_owned(),
            metric: metric.to_owned(),
            threshold,
            direction: GoalDirection::AtMost,
        }
    }

    /// Is a windowed metric value compatible with the goal?
    pub fn satisfied_by(&self, value: f64) -> bool {
        match self.direction {
            GoalDirection::AtLeast => value >= self.threshold,
            GoalDirection::AtMost => value <= self.threshold,
        }
    }
}

impl fmt::Display for GoalPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dir = match self.direction {
            GoalDirection::AtLeast => ">=",
            GoalDirection::AtMost => "<=",
        };
        write!(
            f,
            "[{}] mean({}) {dir} {}",
            self.id, self.metric, self.threshold
        )
    }
}

/// One unmet goal with its observed windowed value.
#[derive(Clone, Debug)]
pub struct GoalViolation {
    /// The unmet goal's id.
    pub goal: String,
    /// The windowed mean actually observed.
    pub observed: f64,
    /// The goal threshold.
    pub threshold: f64,
}

impl fmt::Display for GoalViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "goal {} unmet: observed {:.3} vs threshold {:.3}",
            self.goal, self.observed, self.threshold
        )
    }
}

/// Sliding-window metric aggregation plus goal assessment.
#[derive(Clone, Debug)]
pub struct GoalMonitor {
    goals: Vec<GoalPolicy>,
    window: usize,
    samples: HashMap<String, VecDeque<f64>>,
}

impl GoalMonitor {
    /// A monitor assessing `goals` over the last `window` observations of
    /// each metric.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(goals: Vec<GoalPolicy>, window: usize) -> GoalMonitor {
        assert!(window > 0, "window must be positive");
        GoalMonitor {
            goals,
            window,
            samples: HashMap::new(),
        }
    }

    /// The monitored goals.
    pub fn goals(&self) -> &[GoalPolicy] {
        &self.goals
    }

    /// Records one observation of a metric.
    pub fn observe(&mut self, metric: &str, value: f64) {
        let q = self.samples.entry(metric.to_owned()).or_default();
        q.push_back(value);
        while q.len() > self.window {
            q.pop_front();
        }
    }

    /// Convenience for boolean outcomes (e.g. "request granted").
    pub fn observe_bool(&mut self, metric: &str, happened: bool) {
        self.observe(metric, if happened { 1.0 } else { 0.0 });
    }

    /// The windowed mean of a metric, if any observations exist.
    pub fn mean(&self, metric: &str) -> Option<f64> {
        let q = self.samples.get(metric)?;
        if q.is_empty() {
            return None;
        }
        Some(q.iter().sum::<f64>() / q.len() as f64)
    }

    /// Goals currently violated. Goals whose metric has no observations yet
    /// are not reported (no evidence either way).
    pub fn violations(&self) -> Vec<GoalViolation> {
        self.goals
            .iter()
            .filter_map(|g| {
                let observed = self.mean(&g.metric)?;
                (!g.satisfied_by(observed)).then(|| GoalViolation {
                    goal: g.id.clone(),
                    observed,
                    threshold: g.threshold,
                })
            })
            .collect()
    }

    /// True if adaptation should be triggered (some goal is unmet).
    pub fn adaptation_needed(&self) -> bool {
        !self.violations().is_empty()
    }

    /// Clears all recorded samples (e.g. after an adaptation round).
    pub fn reset(&mut self) {
        self.samples.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goals_assess_windowed_means() {
        let mut m = GoalMonitor::new(
            vec![
                GoalPolicy::at_least("availability", "grant_rate", 0.5),
                GoalPolicy::at_most("risk", "violation_rate", 0.1),
            ],
            4,
        );
        // No data: no violations.
        assert!(!m.adaptation_needed());
        for granted in [true, false, false, false] {
            m.observe_bool("grant_rate", granted);
        }
        m.observe("violation_rate", 0.0);
        let v = m.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].goal, "availability");
        assert!((v[0].observed - 0.25).abs() < 1e-9);
        assert!(m.adaptation_needed());
    }

    #[test]
    fn window_slides() {
        let mut m = GoalMonitor::new(vec![GoalPolicy::at_least("g", "x", 0.9)], 2);
        m.observe("x", 0.0);
        m.observe("x", 0.0);
        assert!(m.adaptation_needed());
        // Two good observations push the bad ones out of the window.
        m.observe("x", 1.0);
        m.observe("x", 1.0);
        assert!(!m.adaptation_needed());
        assert_eq!(m.mean("x"), Some(1.0));
    }

    #[test]
    fn at_most_direction() {
        let g = GoalPolicy::at_most("latency", "ms", 100.0);
        assert!(g.satisfied_by(99.0));
        assert!(g.satisfied_by(100.0));
        assert!(!g.satisfied_by(101.0));
        assert_eq!(g.to_string(), "[latency] mean(ms) <= 100");
    }

    #[test]
    fn reset_clears_evidence() {
        let mut m = GoalMonitor::new(vec![GoalPolicy::at_least("g", "x", 0.5)], 3);
        m.observe("x", 0.0);
        assert!(m.adaptation_needed());
        m.reset();
        assert!(!m.adaptation_needed());
        assert_eq!(m.mean("x"), None);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = GoalMonitor::new(vec![], 0);
    }
}
