//! The AGENP architecture (paper §III, Fig. 2): the components an
//! Autonomous Managed System wires together — Policy Refinement Point,
//! Policy Adaptation Point, Policy Checking Point, Policy Information
//! Point, and the repositories.

mod ams;
mod goals;
mod padap;
mod pcp;
mod pip;
mod prep;
mod repr;

pub use ams::{Ams, AmsError};
pub use goals::{GoalDirection, GoalMonitor, GoalPolicy, GoalViolation};
pub use padap::{Adaptation, Feedback, Padap};
pub use pcp::{Pcp, Verdict};
pub use pip::{ContextProvider, Pip, StaticContext};
pub use prep::{CanonicalTranslator, FnTranslator, PolicyTranslator, Prep};
pub use repr::{GpmVersion, RepresentationsRepository};
