//! The AGENP architecture (paper §III, Fig. 2): the components an
//! Autonomous Managed System wires together — Policy Refinement Point,
//! Policy Adaptation Point, Policy Checking Point, Policy Information
//! Point, and the repositories — plus the shared-snapshot PDP serving tier
//! (`docs/SERVING.md`) that splits decision-making out of the mutable AMS.

mod ams;
mod goals;
mod obs;
mod padap;
mod pcp;
mod pip;
mod prep;
mod repr;
mod serve;

pub use ams::{Ams, AmsError, DegradedMode};
pub use goals::{GoalDirection, GoalMonitor, GoalPolicy, GoalViolation};
pub use obs::ServeMetrics;
pub use padap::{Adaptation, Feedback, Padap};
pub use pcp::{Pcp, Verdict};
pub use pip::{ContextProvider, Pip, StaticContext};
pub use prep::{CanonicalTranslator, FnTranslator, PolicyTranslator, Prep};
pub use repr::{GpmVersion, RepresentationsRepository};
pub use serve::{
    DecisionCache, DecisionOutcome, DecisionSnapshot, PdpHandle, PdpPin, PdpServer, ServeStats,
    ServerReport, SnapshotSwap,
};
