//! The Representations Repository (paper §III-A-1, Fig. 2): versioned
//! storage of learned generative policy models (ASGs), so the PAdaP always
//! has access to the latest representation and can roll back.

use agenp_grammar::Asg;

/// One stored GPM version.
#[derive(Clone, Debug)]
pub struct GpmVersion {
    /// Monotone version number (1-based).
    pub version: u64,
    /// The stored grammar.
    pub gpm: Asg,
    /// Free-form provenance note ("initial", "adapted after 12 decisions"…).
    pub note: String,
}

/// Versioned storage of learned ASG-based generative policy models.
#[derive(Clone, Debug, Default)]
pub struct RepresentationsRepository {
    versions: Vec<GpmVersion>,
}

impl RepresentationsRepository {
    /// An empty repository.
    pub fn new() -> RepresentationsRepository {
        RepresentationsRepository::default()
    }

    /// Stores a new version, returning its version number.
    pub fn store(&mut self, gpm: Asg, note: &str) -> u64 {
        let version = self.versions.len() as u64 + 1;
        self.versions.push(GpmVersion {
            version,
            gpm,
            note: note.to_owned(),
        });
        version
    }

    /// The latest stored version, if any.
    pub fn latest(&self) -> Option<&GpmVersion> {
        self.versions.last()
    }

    /// A specific version (1-based).
    pub fn version(&self, v: u64) -> Option<&GpmVersion> {
        self.versions.get((v as usize).checked_sub(1)?)
    }

    /// All versions, oldest first.
    pub fn history(&self) -> &[GpmVersion] {
        &self.versions
    }

    /// Number of stored versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// True if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Asg {
        "policy -> \"allow\"".parse().unwrap()
    }

    #[test]
    fn versions_are_monotone() {
        let mut r = RepresentationsRepository::new();
        assert!(r.latest().is_none());
        let v1 = r.store(tiny(), "initial");
        let v2 = r.store(tiny(), "adapted");
        assert_eq!((v1, v2), (1, 2));
        assert_eq!(r.latest().unwrap().note, "adapted");
        assert_eq!(r.version(1).unwrap().note, "initial");
        assert!(r.version(3).is_none());
        assert!(r.version(0).is_none());
        assert_eq!(r.history().len(), 2);
    }
}
