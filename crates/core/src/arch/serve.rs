//! The shared-snapshot PDP serving tier: decision-making split out of the
//! mutable [`Ams`](crate::arch::Ams) into an immutable, `Send + Sync`
//! [`DecisionSnapshot`] that any number of worker threads query
//! concurrently while the control loop builds the next snapshot off to the
//! side (the ROADMAP's "heavy traffic from millions of users" target; see
//! `docs/SERVING.md`).
//!
//! The tier has three layers:
//!
//! * [`SnapshotSwap`] — one atomic slot holding an `Arc<DecisionSnapshot>`.
//!   Readers take a momentary read lock *only* to clone the `Arc`; the
//!   decision itself runs with no lock held. Publishing a new snapshot is a
//!   pointer swap, never a wait-for-readers.
//! * [`DecisionCache`] — a sharded request→decision memo keyed by
//!   [`Request::canonical_key`] and stamped with the snapshot *epoch*; a
//!   published snapshot bumps the epoch, which invalidates every cached
//!   entry at once without touching the shards.
//! * [`PdpHandle`] — a cheap `Clone` handle combining both, plus a
//!   [`PdpServer`] that drives a closed-loop multi-threaded workload
//!   against a handle and reports throughput and hit rates.

use crate::arch::ams::AmsError;
use agenp_asp::{Program, RunBudget};
use agenp_grammar::Asg;
use agenp_policy::{
    evaluate_policies, evaluate_policies_effects, CombiningAlg, Decision, DecisionEffects,
    Enforcement, Obligation, Pep, Policy, Request,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

/// Number of cache shards. A small power of two: enough to keep worker
/// threads off each other's locks, few enough that per-shard maps stay
/// dense.
const CACHE_SHARDS: usize = 16;

/// Number of stripes for the hot-path statistics counters.
const COUNTER_STRIPES: usize = 16;

/// Entry cap for one pin's private decision cache. Beyond this the pin
/// stops memoizing new keys (it never evicts mid-epoch); the cap bounds
/// per-worker memory for adversarial key streams while leaving realistic
/// working sets fully resident.
const PIN_CACHE_CAP: usize = 8192;

/// The stripe this thread bumps. Threads are assigned stripes round-robin
/// at first use, so up to [`COUNTER_STRIPES`] concurrent workers never
/// share a counter cache line.
#[inline]
fn counter_stripe() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) % COUNTER_STRIPES;
    }
    STRIPE.with(|s| *s)
}

/// An [`AtomicU64`] alone on its cache line, so two stripes never falsely
/// share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedCounter(AtomicU64);

/// A monotone counter striped across cache lines. A single shared
/// `AtomicU64` bumped per decision turns into a coherence-traffic hotspot
/// under multi-threaded serving (every `fetch_add` bounces the line
/// between cores); striping makes the bump core-local and pays for it
/// with a 16-way sum on the (rare) read side.
struct StripedU64 {
    stripes: [PaddedCounter; COUNTER_STRIPES],
}

impl Default for StripedU64 {
    fn default() -> StripedU64 {
        StripedU64 {
            stripes: std::array::from_fn(|_| PaddedCounter::default()),
        }
    }
}

impl StripedU64 {
    #[inline]
    fn incr(&self) {
        self.add(1);
    }

    #[inline]
    fn add(&self, n: u64) {
        self.stripes[counter_stripe()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    fn sum(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for StripedU64 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "StripedU64({})", self.sum())
    }
}

/// An immutable, consistent view of everything the PDP needs to answer a
/// request: the translated policy set, the combining algorithm, and the
/// compiled GPM plus grounded context the policies were generated from.
///
/// Snapshots are built by the control loop ([`Ams::refresh_policies`],
/// `adopt_gpm`, `set_context`) and published through a [`PdpHandle`]; they
/// are never mutated afterwards, so worker threads can decide against one
/// without synchronization. A snapshot built from a *failed* refresh
/// carries the error and renders deny-by-default.
///
/// [`Ams::refresh_policies`]: crate::arch::Ams::refresh_policies
#[derive(Clone, Debug)]
pub struct DecisionSnapshot {
    epoch: u64,
    policies: Vec<Policy>,
    combining: CombiningAlg,
    gpm: Option<Asg>,
    context: Program,
    error: Option<AmsError>,
}

impl DecisionSnapshot {
    /// A snapshot serving `policies` under `combining`, with no GPM or
    /// context attached and epoch 0 (the epoch is assigned on publish).
    pub fn new(policies: Vec<Policy>, combining: CombiningAlg) -> DecisionSnapshot {
        DecisionSnapshot {
            epoch: 0,
            policies,
            combining,
            gpm: None,
            context: Program::new(),
            error: None,
        }
    }

    /// Attaches the GPM the policies were generated from, enabling
    /// [`DecisionSnapshot::admits`].
    pub fn with_gpm(mut self, gpm: Asg) -> DecisionSnapshot {
        self.gpm = Some(gpm);
        self
    }

    /// Attaches the grounded context the policies were generated under.
    pub fn with_context(mut self, context: Program) -> DecisionSnapshot {
        self.context = context;
        self
    }

    /// Marks the snapshot as degraded: the pipeline upstream failed with
    /// `error`, and every decision renders a fail-safe [`Decision::Deny`].
    pub fn degraded(mut self, error: AmsError) -> DecisionSnapshot {
        self.error = Some(error);
        self
    }

    /// The snapshot's epoch (assigned when published; 0 before).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The policy set served by this snapshot.
    pub fn policies(&self) -> &[Policy] {
        &self.policies
    }

    /// The combining algorithm applied across policies.
    pub fn combining(&self) -> CombiningAlg {
        self.combining
    }

    /// The GPM the policies were generated from, if attached.
    pub fn gpm(&self) -> Option<&Asg> {
        self.gpm.as_ref()
    }

    /// The context the policies were generated under.
    pub fn context(&self) -> &Program {
        &self.context
    }

    /// The upstream failure this snapshot degrades for, if any.
    pub fn error(&self) -> Option<&AmsError> {
        self.error.as_ref()
    }

    /// True when the snapshot was built from a failed refresh and renders
    /// deny-by-default.
    pub fn is_degraded(&self) -> bool {
        self.error.is_some()
    }

    /// Renders a decision — pure, lock-free, safe from any thread.
    /// Degraded snapshots deny unconditionally rather than evaluating
    /// possibly-stale policies as if they were fresh.
    pub fn decide(&self, request: &Request) -> Decision {
        if self.error.is_some() {
            return Decision::Deny;
        }
        evaluate_policies(&self.policies, self.combining, request)
    }

    /// Renders the full [`DecisionEffects`]: the same decision as
    /// [`DecisionSnapshot::decide`] plus the obligations and penalty
    /// annotation the policy set attaches to it. A degraded snapshot's
    /// fail-safe Deny is bare — the policies are never evaluated, so no
    /// annotation can attach.
    pub fn decide_effects(&self, request: &Request) -> DecisionEffects {
        if self.error.is_some() {
            return DecisionEffects::bare(Decision::Deny);
        }
        evaluate_policies_effects(&self.policies, self.combining, request)
    }

    /// Does the snapshot's GPM admit `policy` under the snapshot's
    /// context? The ASP solver is a small `Copy` configuration value, so
    /// membership checks run against the shared snapshot without cloning
    /// any solver state. Returns `Ok(false)` when no GPM is attached.
    ///
    /// # Errors
    ///
    /// [`AmsError::Generation`] on grounding failures or budget overruns.
    pub fn admits(&self, policy: &str, budget: &RunBudget) -> Result<bool, AmsError> {
        match &self.gpm {
            Some(g) => Ok(g
                .with_context(&self.context)
                .accepts_within(policy, budget)?),
            None => Ok(false),
        }
    }
}

/// One atomic slot holding the current [`DecisionSnapshot`] behind an
/// [`Arc`].
///
/// Implementation note: with only `std` available, the slot is an
/// `RwLock<Arc<_>>` rather than a true lock-free atomic pointer. Readers
/// hold the read lock exactly long enough to clone the `Arc` (a refcount
/// increment), then decide with no lock held; writers swap the pointer
/// under the write lock. The lock is therefore never held across policy
/// evaluation, grounding, or solving on either side.
#[derive(Debug)]
pub struct SnapshotSwap {
    slot: RwLock<Arc<DecisionSnapshot>>,
}

impl SnapshotSwap {
    /// A swap slot initially holding `snapshot`.
    pub fn new(snapshot: DecisionSnapshot) -> SnapshotSwap {
        SnapshotSwap {
            slot: RwLock::new(Arc::new(snapshot)),
        }
    }

    /// The current snapshot. The read lock is held only for the `Arc`
    /// clone; the returned snapshot stays valid (and consistent) for as
    /// long as the caller keeps it, even across concurrent publishes.
    pub fn load(&self) -> Arc<DecisionSnapshot> {
        self.slot.read().expect("snapshot slot poisoned").clone()
    }

    /// Publishes `snapshot`, replacing the current one. In-flight readers
    /// keep their old `Arc` until they drop it.
    pub fn store(&self, snapshot: DecisionSnapshot) {
        *self.slot.write().expect("snapshot slot poisoned") = Arc::new(snapshot);
    }
}

#[derive(Clone, Debug)]
struct CacheEntry {
    epoch: u64,
    effects: DecisionEffects,
}

/// A sharded request→decision memo, keyed by [`Request::canonical_key`]
/// and invalidated wholesale by snapshot epoch: every entry is stamped
/// with the epoch it was computed under, and a lookup under any other
/// epoch is a miss (the stale entry is evicted on sight). Publishing a
/// snapshot therefore invalidates the whole cache in O(1) without
/// touching the shards.
#[derive(Debug)]
pub struct DecisionCache {
    shards: Vec<RwLock<HashMap<String, CacheEntry>>>,
    hits: StripedU64,
    misses: StripedU64,
    invalidations: StripedU64,
}

impl Default for DecisionCache {
    fn default() -> DecisionCache {
        DecisionCache::new()
    }
}

impl DecisionCache {
    /// An empty cache.
    pub fn new() -> DecisionCache {
        DecisionCache {
            shards: (0..CACHE_SHARDS)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
            hits: StripedU64::default(),
            misses: StripedU64::default(),
            invalidations: StripedU64::default(),
        }
    }

    fn shard(&self, key: &str) -> &RwLock<HashMap<String, CacheEntry>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % CACHE_SHARDS]
    }

    /// The decision effects cached for `key` under `epoch`, if any. An
    /// entry from a different epoch counts as a miss and is evicted.
    pub fn get(&self, key: &str, epoch: u64) -> Option<DecisionEffects> {
        let shard = self.shard(key);
        let stale = {
            let map = shard.read().expect("cache shard poisoned");
            match map.get(key) {
                Some(e) if e.epoch == epoch => {
                    self.hits.incr();
                    return Some(e.effects.clone());
                }
                Some(_) => true,
                None => false,
            }
        };
        if stale {
            let mut map = shard.write().expect("cache shard poisoned");
            // Re-check under the write lock: a racing insert may already
            // have refreshed the entry for the current epoch.
            if map.get(key).is_some_and(|e| e.epoch != epoch) {
                map.remove(key);
                self.invalidations.incr();
            }
        }
        self.misses.incr();
        None
    }

    /// Caches `effects` for `key` under `epoch`, superseding any entry
    /// from another epoch.
    pub fn insert(&self, key: String, epoch: u64, effects: DecisionEffects) {
        let mut map = self.shard(&key).write().expect("cache shard poisoned");
        map.insert(key, CacheEntry { epoch, effects });
    }

    /// Number of entries currently resident (all epochs).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache shard poisoned").len())
            .sum()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Monotone counters for a serving handle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Decisions rendered through the handle.
    pub decisions: u64,
    /// Decisions answered from the cache.
    pub cache_hits: u64,
    /// Decisions that had to evaluate the snapshot.
    pub cache_misses: u64,
    /// Stale-epoch entries evicted on lookup.
    pub invalidations: u64,
    /// Snapshots published.
    pub publishes: u64,
}

impl ServeStats {
    /// Fraction of decisions answered from the cache (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.decisions as f64
        }
    }
}

#[derive(Debug)]
struct PdpShared {
    swap: SnapshotSwap,
    cache: DecisionCache,
    epoch: AtomicU64,
    decisions: StripedU64,
    publishes: AtomicU64,
    pep: Pep,
}

impl PdpShared {
    /// Assembles the full outcome for a decision rendered under `snapshot`.
    fn outcome(
        &self,
        snapshot: &DecisionSnapshot,
        effects: DecisionEffects,
        cached: bool,
    ) -> DecisionOutcome {
        let decision = effects.decision;
        DecisionOutcome {
            decision,
            obligations: effects.obligations,
            penalty: effects.penalty,
            enforcement: Some(self.pep.enforce(decision)),
            error: snapshot.error.clone(),
            epoch: snapshot.epoch,
            cached,
        }
    }
}

/// The outcome of one decision through the serving tier: the decision
/// itself, the obligations and penalty annotation it carries, the
/// enforcement the PEP derives from it, the upstream error the serving
/// snapshot degrades for (if any), and cache/epoch diagnostics.
///
/// Compare against a [`Decision`] through [`DecisionOutcome::decision`]
/// (the field or the accessor): `assert_eq!(outcome.decision(), Decision::Deny)`.
#[derive(Clone, Debug)]
pub struct DecisionOutcome {
    /// The rendered decision.
    pub decision: Decision,
    /// Obligations the decision issues (empty for indefinite or degraded
    /// decisions); feed them to an `ObligationLedger` to track discharge.
    pub obligations: Vec<Obligation>,
    /// Worst sanction for acting against this decision (Deny only; 0
    /// otherwise).
    pub penalty: u32,
    /// The enforcement action derived by the PEP.
    pub enforcement: Option<Enforcement>,
    /// The upstream failure behind a degraded snapshot, if any.
    pub error: Option<AmsError>,
    /// Epoch of the snapshot that answered.
    pub epoch: u64,
    /// True when the decision came from the cache.
    pub cached: bool,
}

impl DecisionOutcome {
    /// The rendered [`Decision`], without the serving diagnostics.
    pub fn decision(&self) -> Decision {
        self.decision
    }

    /// The decision plus its annotations as a [`DecisionEffects`] — the
    /// value a `ComplianceEvaluator` or `ObligationLedger` consumes.
    pub fn effects(&self) -> DecisionEffects {
        DecisionEffects {
            decision: self.decision,
            obligations: self.obligations.clone(),
            penalty: self.penalty,
        }
    }
}

/// A cheap-to-clone, `Send + Sync` handle onto the serving tier: the
/// snapshot slot, the sharded cache, and the PEP. Worker threads clone the
/// handle and call [`PdpHandle::decide`] freely; the control loop publishes
/// new snapshots through the same handle.
#[derive(Clone, Debug)]
pub struct PdpHandle {
    inner: Arc<PdpShared>,
}

impl Default for PdpHandle {
    fn default() -> PdpHandle {
        PdpHandle::new()
    }
}

impl PdpHandle {
    /// A handle serving an empty snapshot (epoch 0, no policies: every
    /// request renders `NotApplicable` until something is published).
    pub fn new() -> PdpHandle {
        PdpHandle {
            inner: Arc::new(PdpShared {
                swap: SnapshotSwap::new(DecisionSnapshot::new(
                    Vec::new(),
                    CombiningAlg::DenyOverrides,
                )),
                cache: DecisionCache::new(),
                epoch: AtomicU64::new(0),
                decisions: StripedU64::default(),
                publishes: AtomicU64::new(0),
                pep: Pep::default(),
            }),
        }
    }

    /// Publishes `snapshot` as the new current snapshot, assigning it the
    /// next epoch. Returns the assigned epoch. In-flight readers finish
    /// against their old snapshot; the epoch bump invalidates every cached
    /// decision.
    pub fn publish(&self, mut snapshot: DecisionSnapshot) -> u64 {
        // AcqRel so a pin that observes the new epoch (Acquire) also sees
        // everything sequenced before this publish.
        let epoch = self.inner.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        snapshot.epoch = epoch;
        let degraded = snapshot.is_degraded();
        let mut span = agenp_obs::span!("serve.publish", epoch = epoch, degraded = degraded);
        span.record("policies", snapshot.policies.len());
        self.inner.swap.store(snapshot);
        self.inner.publishes.fetch_add(1, Ordering::Relaxed);
        if span.is_live() {
            let m = crate::arch::obs::ServeMetrics::global();
            m.publishes.incr();
            if degraded {
                m.degraded_publishes.incr();
            }
        }
        epoch
    }

    /// The current snapshot (consistent for as long as the caller holds
    /// it).
    pub fn snapshot(&self) -> Arc<DecisionSnapshot> {
        self.inner.swap.load()
    }

    /// Renders a decision against the current snapshot, answering from the
    /// sharded cache when a same-epoch entry exists.
    ///
    /// When telemetry is enabled the decision is also mirrored into the
    /// global `serve.*` metrics (including a latency histogram); with
    /// telemetry disabled the only extra cost on this hot path is one
    /// relaxed atomic load.
    pub fn decide(&self, request: &Request) -> DecisionOutcome {
        if !agenp_obs::enabled() {
            return self.decide_inner(request);
        }
        let start = agenp_obs::monotonic_ns();
        let outcome = self.decide_inner(request);
        Self::mirror_metrics(start, &outcome);
        outcome
    }

    fn mirror_metrics(start: u64, outcome: &DecisionOutcome) {
        let m = crate::arch::obs::ServeMetrics::global();
        m.decide_latency_ns
            .record(agenp_obs::monotonic_ns().saturating_sub(start));
        m.decisions.incr();
        if outcome.cached {
            m.cache_hits.incr();
        } else {
            m.cache_misses.incr();
        }
    }

    /// Batched mirror: one histogram sample at the batch's mean per-request
    /// latency (so the histogram stays per-decision-scaled), counters bumped
    /// by whole-batch deltas.
    fn mirror_batch_metrics(start: u64, outcomes: &[DecisionOutcome]) {
        if outcomes.is_empty() {
            return;
        }
        let m = crate::arch::obs::ServeMetrics::global();
        let elapsed = agenp_obs::monotonic_ns().saturating_sub(start);
        m.decide_latency_ns.record(elapsed / outcomes.len() as u64);
        let hits = outcomes.iter().filter(|o| o.cached).count() as u64;
        m.decisions.add(outcomes.len() as u64);
        m.cache_hits.add(hits);
        m.cache_misses.add(outcomes.len() as u64 - hits);
    }

    fn decide_inner(&self, request: &Request) -> DecisionOutcome {
        let snapshot = self.inner.swap.load();
        self.decide_with(&snapshot, request)
    }

    /// The decision path proper, against an already-resolved snapshot.
    /// [`PdpHandle::decide`] resolves the snapshot per call; a [`PdpPin`]
    /// reuses its pinned one.
    fn decide_with(&self, snapshot: &DecisionSnapshot, request: &Request) -> DecisionOutcome {
        self.inner.decisions.incr();
        let key = request.canonical_key();
        if let Some(effects) = self.inner.cache.get(&key, snapshot.epoch) {
            return self.inner.outcome(snapshot, effects, true);
        }
        let effects = snapshot.decide_effects(request);
        self.inner
            .cache
            .insert(key, snapshot.epoch, effects.clone());
        self.inner.outcome(snapshot, effects, false)
    }

    /// Renders decisions for a whole slice of requests against **one**
    /// snapshot resolved at entry: the batch is never torn across a
    /// concurrent publish — every outcome carries the same `epoch`, exactly
    /// as if the caller had pinned, decided sequentially, and no publish had
    /// landed in between. Duplicate requests (same
    /// [`Request::canonical_key`]) are grouped and answered once, so the
    /// snapshot-resolution, epoch-check, and cache-probe costs amortize over
    /// the batch.
    ///
    /// Element-wise, `decide_batch(reqs)[i].decision` is identical to what
    /// sequential `decide(&reqs[i])` calls would render under the same
    /// snapshot; only the `cached` diagnostic may differ (duplicates after
    /// the first in a batch always report `cached: true`).
    pub fn decide_batch(&self, requests: &[Request]) -> Vec<DecisionOutcome> {
        let snapshot = self.inner.swap.load();
        if !agenp_obs::enabled() {
            return self.decide_batch_with(&snapshot, requests);
        }
        let start = agenp_obs::monotonic_ns();
        let outcomes = self.decide_batch_with(&snapshot, requests);
        Self::mirror_batch_metrics(start, &outcomes);
        outcomes
    }

    /// The batched decision path against an already-resolved snapshot,
    /// probing the shared sharded cache once per distinct key.
    fn decide_batch_with(
        &self,
        snapshot: &DecisionSnapshot,
        requests: &[Request],
    ) -> Vec<DecisionOutcome> {
        self.inner.decisions.add(requests.len() as u64);
        let mut order: Vec<(String, usize)> = requests
            .iter()
            .enumerate()
            .map(|(i, r)| (r.canonical_key(), i))
            .collect();
        order.sort_unstable();
        let mut out: Vec<Option<DecisionOutcome>> = vec![None; requests.len()];
        let mut i = 0;
        while i < order.len() {
            let (key, first_idx) = (&order[i].0, order[i].1);
            let (effects, first_cached) = match self.inner.cache.get(key, snapshot.epoch) {
                Some(fx) => (fx, true),
                None => {
                    let fx = snapshot.decide_effects(&requests[first_idx]);
                    self.inner
                        .cache
                        .insert(key.clone(), snapshot.epoch, fx.clone());
                    (fx, false)
                }
            };
            let mut j = i;
            while j < order.len() && order[j].0 == *key {
                out[order[j].1] = Some(self.inner.outcome(
                    snapshot,
                    effects.clone(),
                    j != i || first_cached,
                ));
                j += 1;
            }
            // Duplicates were answered from the batch group, not evaluated:
            // account for them as hits so hits + misses == decisions holds.
            self.inner.cache.hits.add((j - i - 1) as u64);
            i = j;
        }
        out.into_iter()
            .map(|o| o.expect("every request index is assigned exactly once"))
            .collect()
    }

    /// Pins the current snapshot for one worker's decision loop (see
    /// [`PdpPin`]). Cheap: one `Arc` clone at pin time.
    pub fn pin(&self) -> PdpPin {
        let snapshot = self.inner.swap.load();
        let local_epoch = snapshot.epoch();
        PdpPin {
            snapshot,
            handle: self.clone(),
            local: HashMap::new(),
            local_epoch,
        }
    }

    /// Snapshot of the handle's counters.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            decisions: self.inner.decisions.sum(),
            cache_hits: self.inner.cache.hits.sum(),
            cache_misses: self.inner.cache.misses.sum(),
            invalidations: self.inner.cache.invalidations.sum(),
            publishes: self.inner.publishes.load(Ordering::Relaxed),
        }
    }

    /// Entries resident in the decision cache (all epochs).
    pub fn cache_len(&self) -> usize {
        self.inner.cache.len()
    }
}

/// One worker thread's pinned decision path.
///
/// [`PdpHandle::decide`] resolves the current snapshot on every call —
/// a read-lock acquisition plus an `Arc` refcount round-trip per
/// decision, which under multi-threaded serving means every worker
/// hammering the same two shared cache lines (the lock word and the
/// refcount). That contention is what flattened the serving tier's
/// multi-thread scaling. A `PdpPin` keeps the snapshot `Arc` pinned in
/// the worker and revalidates it with a single `Acquire` load of the
/// epoch counter per decision, touching the shared slot only when a
/// publish actually moved the epoch.
///
/// Freshness: a pinned decision can race a concurrent publish (exactly
/// like a decision that resolved the snapshot just before the publish
/// landed), but the publish bumps the epoch *before* swapping the slot,
/// so the pin re-resolves on the next call at the latest and each
/// outcome's `epoch` is always the epoch of the snapshot that actually
/// answered. Pins are cheap to create and single-threaded by design
/// (`&mut self`); clone the handle and pin per worker.
///
/// Beyond the pinned `Arc`, each pin keeps a **private epoch-stamped
/// decision cache**: a plain (unsynchronized) map from
/// [`Request::canonical_key`] to the decision rendered under the pinned
/// snapshot. A warm pinned decision therefore touches *no shared mutable
/// state at all* — no snapshot-slot lock, no cache-shard lock, only the
/// one `Acquire` epoch load (plus core-local striped counter bumps) —
/// which removes the 16-shard cache lock as the last shared write on the
/// hot path. The private cache self-invalidates: whenever revalidation
/// observes a different snapshot epoch than the one the cache was filled
/// under, the map is cleared before any probe, so a stale entry can never
/// survive a publish. Entries are capped at `PIN_CACHE_CAP` (8192); past
/// the cap the pin keeps deciding correctly but stops memoizing new keys.
#[derive(Clone, Debug)]
pub struct PdpPin {
    snapshot: Arc<DecisionSnapshot>,
    handle: PdpHandle,
    /// Private request→decision-effects memo, valid only for `local_epoch`.
    local: HashMap<String, DecisionEffects>,
    /// The snapshot epoch `local` was filled under.
    local_epoch: u64,
}

impl PdpPin {
    /// Re-resolves the pinned snapshot if a publish moved the epoch, and
    /// drops the private cache if it was filled under another epoch.
    fn revalidate(&mut self) {
        if self.snapshot.epoch() != self.handle.inner.epoch.load(Ordering::Acquire) {
            self.snapshot = self.handle.inner.swap.load();
        }
        if self.local_epoch != self.snapshot.epoch() {
            self.local.clear();
            self.local_epoch = self.snapshot.epoch();
        }
    }

    /// Renders a decision against the pinned snapshot, re-resolving it
    /// first if a publish has moved the epoch. Warm calls are answered
    /// from the pin's private cache without touching any shared lock.
    pub fn decide(&mut self, request: &Request) -> DecisionOutcome {
        self.revalidate();
        if !agenp_obs::enabled() {
            return self.decide_local(request);
        }
        let start = agenp_obs::monotonic_ns();
        let outcome = self.decide_local(request);
        PdpHandle::mirror_metrics(start, &outcome);
        outcome
    }

    /// Batched pinned decisions: one epoch check and one revalidation for
    /// the whole slice, every outcome under the same snapshot (same
    /// consistency contract as [`PdpHandle::decide_batch`]), duplicates
    /// answered once from the private cache.
    pub fn decide_batch(&mut self, requests: &[Request]) -> Vec<DecisionOutcome> {
        self.revalidate();
        if !agenp_obs::enabled() {
            return self.decide_batch_local(requests);
        }
        let start = agenp_obs::monotonic_ns();
        let outcomes = self.decide_batch_local(requests);
        PdpHandle::mirror_batch_metrics(start, &outcomes);
        outcomes
    }

    /// One decision through the private cache (no shared locks).
    fn decide_local(&mut self, request: &Request) -> DecisionOutcome {
        let shared = &self.handle.inner;
        shared.decisions.incr();
        let key = request.canonical_key();
        if let Some(effects) = self.local.get(&key) {
            shared.cache.hits.incr();
            return shared.outcome(&self.snapshot, effects.clone(), true);
        }
        let effects = self.snapshot.decide_effects(request);
        shared.cache.misses.incr();
        if self.local.len() < PIN_CACHE_CAP {
            self.local.insert(key, effects.clone());
        }
        shared.outcome(&self.snapshot, effects, false)
    }

    /// The batched path against the private cache.
    fn decide_batch_local(&mut self, requests: &[Request]) -> Vec<DecisionOutcome> {
        self.handle.inner.decisions.add(requests.len() as u64);
        let mut order: Vec<(String, usize)> = requests
            .iter()
            .enumerate()
            .map(|(i, r)| (r.canonical_key(), i))
            .collect();
        order.sort_unstable();
        let mut out: Vec<Option<DecisionOutcome>> = vec![None; requests.len()];
        let mut i = 0;
        while i < order.len() {
            let (key, first_idx) = (&order[i].0, order[i].1);
            let shared = &self.handle.inner;
            let (effects, first_cached) = match self.local.get(key) {
                Some(fx) => {
                    shared.cache.hits.incr();
                    (fx.clone(), true)
                }
                None => {
                    let fx = self.snapshot.decide_effects(&requests[first_idx]);
                    shared.cache.misses.incr();
                    if self.local.len() < PIN_CACHE_CAP {
                        self.local.insert(key.clone(), fx.clone());
                    }
                    (fx, false)
                }
            };
            let mut j = i;
            while j < order.len() && order[j].0 == *key {
                out[order[j].1] =
                    Some(shared.outcome(&self.snapshot, effects.clone(), j != i || first_cached));
                j += 1;
            }
            shared.cache.hits.add((j - i - 1) as u64);
            i = j;
        }
        out.into_iter()
            .map(|o| o.expect("every request index is assigned exactly once"))
            .collect()
    }

    /// Entries resident in this pin's private cache.
    pub fn local_cache_len(&self) -> usize {
        self.local.len()
    }

    /// The snapshot currently pinned (as of the last [`PdpPin::decide`]).
    pub fn snapshot(&self) -> &DecisionSnapshot {
        &self.snapshot
    }

    /// The handle this pin serves from.
    pub fn handle(&self) -> &PdpHandle {
        &self.handle
    }
}

/// One thread's share of a [`PdpServer`] run.
#[derive(Clone, Copy, Debug, Default)]
struct WorkerTally {
    decisions: u64,
    permits: u64,
    denies: u64,
    gaps: u64,
}

/// Aggregate result of a closed-loop [`PdpServer`] run.
#[derive(Clone, Debug)]
pub struct ServerReport {
    /// Worker threads driven.
    pub threads: usize,
    /// Total decisions rendered.
    pub decisions: u64,
    /// Wall-clock time for the whole run.
    pub elapsed: Duration,
    /// Decisions per second (0.0 for an empty run).
    pub throughput: f64,
    /// Cache hits during the run (delta, not lifetime).
    pub cache_hits: u64,
    /// Cache misses during the run (delta, not lifetime).
    pub cache_misses: u64,
    /// Permits rendered.
    pub permits: u64,
    /// Denies rendered.
    pub denies: u64,
    /// `NotApplicable` / `Indeterminate` rendered.
    pub gaps: u64,
}

impl ServerReport {
    /// Fraction of this run's decisions answered from the cache.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Drives a closed-loop request workload against a [`PdpHandle`]: `threads`
/// workers each render `decisions_per_thread` back-to-back decisions,
/// cycling through the workload from a per-thread offset (so threads hit
/// overlapping but phase-shifted request streams, exercising both cache
/// hits and shard contention).
#[derive(Clone, Debug)]
pub struct PdpServer {
    handle: PdpHandle,
    threads: usize,
}

impl PdpServer {
    /// A single-threaded server over `handle`.
    pub fn new(handle: PdpHandle) -> PdpServer {
        PdpServer { handle, threads: 1 }
    }

    /// Sets the number of worker threads (minimum 1).
    pub fn with_threads(mut self, threads: usize) -> PdpServer {
        self.threads = threads.max(1);
        self
    }

    /// The handle this server drives.
    pub fn handle(&self) -> &PdpHandle {
        &self.handle
    }

    /// Runs the closed loop and reports aggregate throughput.
    pub fn run(&self, workload: &[Request], decisions_per_thread: usize) -> ServerReport {
        let before = self.handle.stats();
        let start = Instant::now();
        let mut tallies: Vec<WorkerTally> = Vec::with_capacity(self.threads);
        if workload.is_empty() || decisions_per_thread == 0 {
            tallies.resize(self.threads, WorkerTally::default());
        } else {
            std::thread::scope(|scope| {
                let mut workers = Vec::with_capacity(self.threads);
                for t in 0..self.threads {
                    let handle = self.handle.clone();
                    workers.push(scope.spawn(move || {
                        // Pin once per worker: one epoch load per decision
                        // instead of a snapshot-slot round-trip.
                        let mut pin = handle.pin();
                        let mut tally = WorkerTally::default();
                        let offset = t * workload.len() / self.threads.max(1);
                        for i in 0..decisions_per_thread {
                            let req = &workload[(offset + i) % workload.len()];
                            let outcome = pin.decide(req);
                            tally.decisions += 1;
                            match outcome.decision {
                                Decision::Permit => tally.permits += 1,
                                Decision::Deny => tally.denies += 1,
                                Decision::NotApplicable | Decision::Indeterminate => {
                                    tally.gaps += 1
                                }
                            }
                        }
                        tally
                    }));
                }
                for w in workers {
                    tallies.push(w.join().expect("worker panicked"));
                }
            });
        }
        let elapsed = start.elapsed();
        let after = self.handle.stats();
        let decisions: u64 = tallies.iter().map(|t| t.decisions).sum();
        let throughput = if elapsed.as_secs_f64() > 0.0 {
            decisions as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        };
        ServerReport {
            threads: self.threads,
            decisions,
            elapsed,
            throughput,
            cache_hits: after.cache_hits - before.cache_hits,
            cache_misses: after.cache_misses - before.cache_misses,
            permits: tallies.iter().map(|t| t.permits).sum(),
            denies: tallies.iter().map(|t| t.denies).sum(),
            gaps: tallies.iter().map(|t| t.gaps).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agenp_policy::{Category, Cond, Effect, PolicyRule};

    fn permit_dba_policies() -> Vec<Policy> {
        vec![Policy::new(
            "p",
            vec![PolicyRule::new(
                "allow-dba",
                Effect::Permit,
                Cond::eq(Category::Subject, "role", "dba"),
            )],
        )]
    }

    #[test]
    fn snapshot_is_send_sync_and_decides() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DecisionSnapshot>();
        assert_send_sync::<PdpHandle>();
        assert_send_sync::<SnapshotSwap>();
        assert_send_sync::<DecisionCache>();
        let snap = DecisionSnapshot::new(permit_dba_policies(), CombiningAlg::DenyOverrides);
        assert_eq!(
            snap.decide(&Request::new().subject("role", "dba")),
            Decision::Permit
        );
        assert_eq!(
            snap.decide(&Request::new().subject("role", "guest")),
            Decision::NotApplicable
        );
    }

    #[test]
    fn degraded_snapshot_denies_everything() {
        let snap = DecisionSnapshot::new(permit_dba_policies(), CombiningAlg::DenyOverrides)
            .degraded(AmsError::Generation(agenp_grammar::AsgError::Exhausted(
                agenp_asp::Exhausted::Atoms,
            )));
        assert!(snap.is_degraded());
        assert_eq!(
            snap.decide(&Request::new().subject("role", "dba")),
            Decision::Deny
        );
    }

    #[test]
    fn handle_caches_within_an_epoch() {
        let handle = PdpHandle::new();
        handle.publish(DecisionSnapshot::new(
            permit_dba_policies(),
            CombiningAlg::DenyOverrides,
        ));
        let req = Request::new().subject("role", "dba");
        let first = handle.decide(&req);
        assert!(!first.cached);
        assert_eq!(first.decision, Decision::Permit);
        let second = handle.decide(&req);
        assert!(second.cached);
        assert_eq!(second.decision, Decision::Permit);
        assert_eq!(second.epoch, first.epoch);
        let stats = handle.stats();
        assert_eq!(stats.decisions, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
        assert!(stats.hit_rate() > 0.4);
    }

    #[test]
    fn publish_bumps_epoch_and_invalidates() {
        let handle = PdpHandle::new();
        let e1 = handle.publish(DecisionSnapshot::new(
            permit_dba_policies(),
            CombiningAlg::DenyOverrides,
        ));
        let req = Request::new().subject("role", "dba");
        assert_eq!(handle.decide(&req).decision, Decision::Permit);
        assert!(handle.decide(&req).cached);
        // New snapshot with no policies: the cached Permit must not
        // survive the swap.
        let e2 = handle.publish(DecisionSnapshot::new(
            Vec::new(),
            CombiningAlg::DenyOverrides,
        ));
        assert_eq!(e2, e1 + 1);
        let outcome = handle.decide(&req);
        assert!(!outcome.cached, "stale entry served across epochs");
        assert_eq!(outcome.decision, Decision::NotApplicable);
        assert_eq!(outcome.epoch, e2);
        assert!(handle.stats().invalidations >= 1);
    }

    #[test]
    fn pin_follows_publishes_and_reports_true_epochs() {
        let handle = PdpHandle::new();
        let e1 = handle.publish(DecisionSnapshot::new(
            permit_dba_policies(),
            CombiningAlg::DenyOverrides,
        ));
        let mut pin = handle.pin();
        let req = Request::new().subject("role", "dba");
        let first = pin.decide(&req);
        assert_eq!(first.decision, Decision::Permit);
        assert_eq!(first.epoch, e1);
        // A publish through the handle must be visible to the pinned path
        // on its next decision — no stale-epoch serves.
        let e2 = handle.publish(
            DecisionSnapshot::new(Vec::new(), CombiningAlg::DenyOverrides)
                .degraded(AmsError::Unavailable("repo offline".into())),
        );
        let second = pin.decide(&req);
        assert_eq!(second.epoch, e2);
        assert_eq!(second.decision, Decision::Deny);
        assert!(second.error.is_some());
        assert_eq!(pin.snapshot().epoch(), e2);
        // Counters flow into the shared stats regardless of path.
        assert_eq!(pin.handle().stats().decisions, 2);
    }

    #[test]
    fn striped_counters_sum_across_threads() {
        let handle = PdpHandle::new();
        handle.publish(DecisionSnapshot::new(
            permit_dba_policies(),
            CombiningAlg::DenyOverrides,
        ));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let handle = handle.clone();
                scope.spawn(move || {
                    let mut pin = handle.pin();
                    let req = Request::new().subject("role", "dba");
                    for _ in 0..100 {
                        pin.decide(&req);
                    }
                });
            }
        });
        let stats = handle.stats();
        assert_eq!(stats.decisions, 800);
        assert_eq!(stats.cache_hits + stats.cache_misses, 800);
    }

    #[test]
    fn outcome_exposes_decision_accessor() {
        let handle = PdpHandle::new();
        let outcome = handle.decide(&Request::new());
        assert_eq!(outcome.decision(), Decision::NotApplicable);
        assert_eq!(outcome.decision(), outcome.decision);
        assert_eq!(outcome.enforcement, Some(Enforcement::Escalated));
    }

    #[test]
    fn server_reports_throughput_and_hits() {
        let handle = PdpHandle::new();
        handle.publish(DecisionSnapshot::new(
            permit_dba_policies(),
            CombiningAlg::DenyOverrides,
        ));
        let workload: Vec<Request> = (0..8)
            .map(|i| Request::new().subject("role", if i % 2 == 0 { "dba" } else { "guest" }))
            .collect();
        let report = PdpServer::new(handle).with_threads(2).run(&workload, 100);
        assert_eq!(report.threads, 2);
        assert_eq!(report.decisions, 200);
        assert_eq!(report.permits + report.denies + report.gaps, 200);
        assert_eq!(report.permits, 100); // half the workload matches
        assert!(report.cache_hits > 0, "repeat requests must hit");
        assert!(
            report.hit_rate() > 0.5,
            "8 distinct keys over 200 decisions"
        );
        assert!(report.throughput >= 0.0);
    }

    #[test]
    fn pin_private_cache_hits_warm_and_self_invalidates() {
        let handle = PdpHandle::new();
        handle.publish(DecisionSnapshot::new(
            permit_dba_policies(),
            CombiningAlg::DenyOverrides,
        ));
        let mut pin = handle.pin();
        let req = Request::new().subject("role", "dba");
        assert!(!pin.decide(&req).cached);
        assert_eq!(pin.local_cache_len(), 1);
        let warm = pin.decide(&req);
        assert!(warm.cached);
        assert_eq!(warm.decision, Decision::Permit);
        // A publish must clear the private cache before the next probe.
        let e2 = handle.publish(DecisionSnapshot::new(
            Vec::new(),
            CombiningAlg::DenyOverrides,
        ));
        let post = pin.decide(&req);
        assert!(!post.cached, "stale private entry survived a publish");
        assert_eq!(post.epoch, e2);
        assert_eq!(post.decision, Decision::NotApplicable);
        assert_eq!(pin.local_cache_len(), 1); // refilled under the new epoch
    }

    #[test]
    fn decide_batch_matches_sequential_and_shares_one_epoch() {
        let handle = PdpHandle::new();
        handle.publish(DecisionSnapshot::new(
            permit_dba_policies(),
            CombiningAlg::DenyOverrides,
        ));
        let reqs: Vec<Request> = (0..20)
            .map(|i| Request::new().subject("role", if i % 3 == 0 { "dba" } else { "guest" }))
            .collect();
        let batch = handle.decide_batch(&reqs);
        assert_eq!(batch.len(), reqs.len());
        let epochs: std::collections::HashSet<u64> = batch.iter().map(|o| o.epoch).collect();
        assert_eq!(epochs.len(), 1, "a batch must not be torn across epochs");
        for (req, out) in reqs.iter().zip(&batch) {
            assert_eq!(out.decision, handle.snapshot().decide(req));
            assert_eq!(
                out.enforcement,
                Some(handle.decide(req).enforcement.unwrap())
            );
        }
        // The pinned batch path agrees element-wise too.
        let mut pin = handle.pin();
        let pinned = pin.decide_batch(&reqs);
        for (a, b) in batch.iter().zip(&pinned) {
            assert_eq!(a.decision, b.decision);
            assert_eq!(a.epoch, b.epoch);
        }
        // 2 distinct keys over 20 requests: duplicates were answered once.
        let stats = handle.stats();
        assert_eq!(stats.cache_hits + stats.cache_misses, stats.decisions);
    }

    #[test]
    fn obligations_round_trip_all_four_paths_and_caches() {
        use agenp_policy::Obligation;
        let policies = vec![Policy::new(
            "p",
            vec![
                PolicyRule::new(
                    "allow-dba",
                    Effect::Permit,
                    Cond::eq(Category::Subject, "role", "dba"),
                )
                .with_obligation(
                    Effect::Permit,
                    Obligation::new("audit", "audit-log", 10).with_penalty(2),
                ),
                PolicyRule::new(
                    "deny-guest",
                    Effect::Deny,
                    Cond::eq(Category::Subject, "role", "guest"),
                )
                .with_penalty(7),
            ],
        )];
        let handle = PdpHandle::new();
        handle.publish(DecisionSnapshot::new(policies, CombiningAlg::DenyOverrides));
        let dba = Request::new().subject("role", "dba");
        let guest = Request::new().subject("role", "guest");
        let check = |o: &DecisionOutcome, cached: bool, what: &str| {
            assert_eq!(o.cached, cached, "{what}");
            match o.decision {
                Decision::Permit => {
                    assert_eq!(o.obligations.len(), 1, "{what}");
                    assert_eq!(o.obligations[0].id, "audit", "{what}");
                    assert_eq!(o.obligations[0].deadline, 10, "{what}");
                    assert_eq!(o.penalty, 0, "{what}");
                }
                Decision::Deny => {
                    assert!(o.obligations.is_empty(), "{what}");
                    assert_eq!(o.penalty, 7, "{what}");
                }
                other => panic!("{what}: unexpected {other}"),
            }
        };
        // Handle decide: cold then cached.
        check(&handle.decide(&dba), false, "handle cold");
        check(&handle.decide(&dba), true, "handle warm");
        // Handle batch (guest is cold, dba cached, duplicate is a hit).
        let batch = handle.decide_batch(&[guest.clone(), dba.clone(), guest.clone()]);
        check(&batch[0], false, "batch cold");
        check(&batch[1], true, "batch from shared cache");
        check(&batch[2], true, "batch duplicate");
        // Pin decide + pin batch through the private cache.
        let mut pin = handle.pin();
        check(&pin.decide(&dba), false, "pin cold");
        check(&pin.decide(&dba), true, "pin warm");
        let pinned = pin.decide_batch(&[dba.clone(), guest.clone()]);
        check(&pinned[0], true, "pin batch warm");
        check(&pinned[1], false, "pin batch cold");
        // effects() reconstructs the ledger-facing value.
        let fx = handle.decide(&guest).effects();
        assert_eq!(fx.decision, Decision::Deny);
        assert_eq!(fx.penalty, 7);
        // Degraded snapshots deny bare: no annotations leak from stale
        // policies.
        handle.publish(
            DecisionSnapshot::new(Vec::new(), CombiningAlg::DenyOverrides)
                .degraded(AmsError::Unavailable("repo offline".into())),
        );
        let degraded = handle.decide(&guest);
        assert_eq!(degraded.decision, Decision::Deny);
        assert!(degraded.obligations.is_empty());
        assert_eq!(degraded.penalty, 0);
    }

    #[test]
    fn empty_batch_is_empty() {
        let handle = PdpHandle::new();
        assert!(handle.decide_batch(&[]).is_empty());
        let mut pin = handle.pin();
        assert!(pin.decide_batch(&[]).is_empty());
    }

    #[test]
    fn empty_workload_reports_zero() {
        let report = PdpServer::new(PdpHandle::new())
            .with_threads(4)
            .run(&[], 100);
        assert_eq!(report.decisions, 0);
        assert_eq!(report.hit_rate(), 0.0);
    }
}
