//! The Policy Information Point (paper §III-A-3): acquires external context
//! that influences which policies the AMS generates and enforces.

use agenp_asp::Program;
use std::fmt;

/// A source of context facts (ASP programs) for the AMS.
///
/// `Send + Sync` so a PIP (and the AMS that embeds it) can sit behind the
/// shared-snapshot serving tier and be polled from the control thread
/// while worker threads serve decisions.
pub trait ContextProvider: fmt::Debug + Send + Sync {
    /// The current context program.
    fn current_context(&self) -> Program;
}

/// A fixed context.
#[derive(Clone, Debug, Default)]
pub struct StaticContext {
    program: Program,
}

impl StaticContext {
    /// Wraps a context program.
    pub fn new(program: Program) -> StaticContext {
        StaticContext { program }
    }

    /// Parses a context from ASP text.
    ///
    /// # Errors
    ///
    /// Propagates parse failures.
    pub fn parse(src: &str) -> Result<StaticContext, agenp_asp::ParseError> {
        Ok(StaticContext {
            program: src.parse()?,
        })
    }
}

impl ContextProvider for StaticContext {
    fn current_context(&self) -> Program {
        self.program.clone()
    }
}

/// A Policy Information Point merging several context providers (e.g. local
/// sensors plus externally shared conditions).
#[derive(Debug, Default)]
pub struct Pip {
    providers: Vec<Box<dyn ContextProvider>>,
}

impl Pip {
    /// An empty PIP.
    pub fn new() -> Pip {
        Pip::default()
    }

    /// Registers a provider.
    pub fn register(&mut self, provider: Box<dyn ContextProvider>) {
        self.providers.push(provider);
    }

    /// The merged context of all providers.
    pub fn context(&self) -> Program {
        let mut merged = Program::new();
        for p in &self.providers {
            merged.extend_from(&p.current_context());
        }
        merged
    }

    /// Number of registered providers.
    pub fn len(&self) -> usize {
        self.providers.len()
    }

    /// True if no providers are registered.
    pub fn is_empty(&self) -> bool {
        self.providers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pip_merges_providers() {
        let mut pip = Pip::new();
        pip.register(Box::new(StaticContext::parse("weather(rain).").unwrap()));
        pip.register(Box::new(StaticContext::parse("threat(high).").unwrap()));
        assert_eq!(pip.len(), 2);
        let ctx = pip.context();
        assert_eq!(ctx.len(), 2);
        let text = ctx.to_string();
        assert!(text.contains("weather(rain)."));
        assert!(text.contains("threat(high)."));
    }

    #[test]
    fn static_context_round_trip() {
        let c = StaticContext::parse("a. b.").unwrap();
        assert_eq!(c.current_context().len(), 2);
    }
}
