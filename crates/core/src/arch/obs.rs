//! Typed view over the global `agenp-obs` registry for the serving tier
//! (`serve.*` metrics). Per-handle [`ServeStats`] atomics stay
//! authoritative for `PdpHandle::stats()`; when telemetry is enabled the
//! handle mirrors its traffic here so dumps see cross-handle totals and a
//! decide-latency histogram.

use crate::arch::serve::ServeStats;
use agenp_obs::{Counter, Histogram};
use std::sync::{Arc, OnceLock};

/// Registry-backed totals for PDP serving (`serve.*`).
#[derive(Clone, Debug)]
pub struct ServeMetrics {
    /// Decisions rendered (`serve.decisions`).
    pub decisions: Arc<Counter>,
    /// Decisions answered from the cache (`serve.cache_hits`).
    pub cache_hits: Arc<Counter>,
    /// Decisions that evaluated the snapshot (`serve.cache_misses`).
    pub cache_misses: Arc<Counter>,
    /// Snapshots published / epoch swaps (`serve.publishes`).
    pub publishes: Arc<Counter>,
    /// Degraded snapshots published (`serve.degraded_publishes`).
    pub degraded_publishes: Arc<Counter>,
    /// Wall-clock nanoseconds per decision (`serve.decide_latency_ns`).
    pub decide_latency_ns: Arc<Histogram>,
}

impl ServeMetrics {
    /// The process-wide view (handles resolve once and are cached).
    pub fn global() -> &'static ServeMetrics {
        static VIEW: OnceLock<ServeMetrics> = OnceLock::new();
        VIEW.get_or_init(|| {
            let r = agenp_obs::registry();
            ServeMetrics {
                decisions: r.counter("serve.decisions"),
                cache_hits: r.counter("serve.cache_hits"),
                cache_misses: r.counter("serve.cache_misses"),
                publishes: r.counter("serve.publishes"),
                degraded_publishes: r.counter("serve.degraded_publishes"),
                decide_latency_ns: r.histogram("serve.decide_latency_ns"),
            }
        })
    }

    /// Cumulative cross-handle totals as a [`ServeStats`] façade
    /// (per-handle invalidations are not mirrored; read them from
    /// `PdpHandle::stats()`).
    pub fn read() -> ServeStats {
        let m = ServeMetrics::global();
        ServeStats {
            decisions: m.decisions.value(),
            cache_hits: m.cache_hits.value(),
            cache_misses: m.cache_misses.value(),
            invalidations: 0,
            publishes: m.publishes.value(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::{DecisionSnapshot, PdpHandle};
    use agenp_policy::{CombiningAlg, Request};

    #[test]
    fn handle_mirrors_into_registry_when_enabled() {
        agenp_obs::install(agenp_obs::ObsConfig::enabled());
        let before = ServeMetrics::read();
        let lat_before = ServeMetrics::global().decide_latency_ns.snapshot().count;
        let handle = PdpHandle::new();
        handle.publish(DecisionSnapshot::new(
            Vec::new(),
            CombiningAlg::DenyOverrides,
        ));
        let req = Request::new().subject("role", "dba");
        handle.decide(&req);
        handle.decide(&req);
        let after = ServeMetrics::read();
        assert!(after.decisions >= before.decisions + 2);
        assert!(after.publishes > before.publishes);
        assert!(after.cache_hits > before.cache_hits);
        let lat_after = ServeMetrics::global().decide_latency_ns.snapshot().count;
        assert!(lat_after >= lat_before + 2);
        agenp_obs::install(agenp_obs::ObsConfig::disabled());

        // Disabled: per-handle stats still move, the registry does not.
        let frozen = ServeMetrics::read();
        handle.decide(&req);
        assert_eq!(ServeMetrics::read().decisions, frozen.decisions);
        assert_eq!(handle.stats().decisions, 3);
    }
}
