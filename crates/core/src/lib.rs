//! # agenp-core — the AGENP generative-policy framework
//!
//! The ASGrammar-based GENerative Policy framework of Bertino et al.
//! (ICDCS 2019), assembled from the workspace substrates:
//!
//! * [`arch`] — the architecture of paper Fig. 2: [`arch::Ams`] wires a
//!   Policy Refinement Point (policy generation from an answer set
//!   grammar), Policy Adaptation Point (ILASP-style re-learning from
//!   observed feedback), Policy Checking Point (quality metrics and
//!   violation screening), Policy Information Point (context acquisition),
//!   and the policy/representation repositories around a conventional
//!   PDP/PEP decision path.
//! * [`scenarios`] — the paper's §IV application studies as synthetic but
//!   faithful workloads: connected autonomous vehicles, XACML access
//!   control, and logistical resupply.
//!
//! ```
//! use agenp_core::arch::{Ams, Feedback};
//! use agenp_grammar::{Asg, ProdId};
//! use agenp_learn::HypothesisSpace;
//!
//! let g: Asg = r#"
//!     policy -> "permit" "always" { e(permit). }
//!     policy -> "deny" "always"   { e(deny). }
//! "#.parse()?;
//! let space = HypothesisSpace::from_texts(&[(ProdId::from_index(0), ":- threat.")]);
//! let mut ams = Ams::new("demo", g, space);
//! let threat: agenp_asp::Program = "threat.".parse()?;
//! ams.observe(Feedback::invalid("permit always", threat.clone()));
//! ams.set_context(threat);
//! ams.adapt()?;
//! assert!(!ams.admits("permit always")?);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arch;
pub mod explain;
pub mod scenarios;

pub use agenp_asp::Parallelism;
