//! Policy explainability (paper §V-B): explain *why certain policies are
//! generated and why others are not*, and produce counterfactual
//! explanations ("if your LOA had been 4, the task would have been
//! accepted") of the kind the paper highlights for human trust and the
//! GDPR's right to explanation.

use agenp_asp::{
    explain_atom, ground_with, violated_constraints, Atom, Derivation, GroundOptions, Program,
    Rule, Solver,
};
use agenp_grammar::{Asg, AsgError, EarleyParser, ParseOptions};
use std::fmt;

/// Why a policy string is (not) in the GPM's language under a context.
#[derive(Debug)]
pub enum PolicyExplanation {
    /// The policy is admitted: a witnessing parse tree and its answer set.
    Accepted {
        /// Rendering of the admitting parse tree.
        tree: String,
        /// The atoms of the witnessing answer set.
        answer_set: Vec<Atom>,
    },
    /// The string is not even in the underlying CFG.
    NotInLanguage,
    /// Every parse tree is semantically rejected.
    Rejected {
        /// One diagnosis per parse tree.
        trees: Vec<TreeDiagnosis>,
    },
}

/// The diagnosis of one rejected parse tree: for each candidate
/// interpretation of the unconstrained program, the constraints that
/// eliminate it — plus the constraints that eliminate *every* candidate
/// (the decisive ones).
#[derive(Debug)]
pub struct TreeDiagnosis {
    /// Rendering of the parse tree.
    pub tree: String,
    /// Violated constraints per candidate interpretation.
    pub per_candidate: Vec<Vec<String>>,
    /// Constraints violated by every candidate (the decisive blockers).
    pub decisive: Vec<String>,
    /// True if even the constraint-free program has no answer set.
    pub base_unsatisfiable: bool,
}

impl fmt::Display for PolicyExplanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyExplanation::Accepted { tree, answer_set } => {
                writeln!(f, "ACCEPTED via parse tree:\n{tree}")?;
                write!(f, "witnessing answer set: {{")?;
                for (i, a) in answer_set.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                writeln!(f, "}}")
            }
            PolicyExplanation::NotInLanguage => {
                writeln!(f, "REJECTED: not a sentence of the policy language")
            }
            PolicyExplanation::Rejected { trees } => {
                writeln!(f, "REJECTED: every parse is blocked")?;
                for t in trees {
                    writeln!(f, "parse tree:\n{}", t.tree)?;
                    if t.base_unsatisfiable {
                        writeln!(f, "  (no candidate interpretation exists at all)")?;
                    }
                    for c in &t.decisive {
                        writeln!(f, "  decisive constraint: {c}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

/// Explains whether and why `policy` is in `L(gpm(context))`.
///
/// # Errors
///
/// Propagates grounding failures.
pub fn explain_policy(
    gpm: &Asg,
    context: &Program,
    policy: &str,
) -> Result<PolicyExplanation, AsgError> {
    let g = gpm.with_context(context);
    let parser = EarleyParser::new(g.cfg());
    let tokens = agenp_grammar::Cfg::tokenize(policy);
    let trees = parser.parse_with(&tokens, ParseOptions::default());
    if trees.is_empty() {
        return Ok(PolicyExplanation::NotInLanguage);
    }
    let unsimplified = GroundOptions {
        simplify: false,
        ..GroundOptions::default()
    };
    let mut diagnoses = Vec::new();
    for tree in &trees {
        let program = g.tree_program(tree);
        let grounded = ground_with(&program, unsimplified).map_err(AsgError::Ground)?;
        let result = Solver::new().max_models(1).solve(&grounded);
        if let Some(model) = result.models().first() {
            return Ok(PolicyExplanation::Accepted {
                tree: g.explain_tree(tree),
                answer_set: model.atoms().to_vec(),
            });
        }
        // Rejected: diagnose by dropping the constraints and checking which
        // of them eliminate each candidate interpretation.
        let relaxed: Program = program
            .rules()
            .iter()
            .filter(|r| !r.is_constraint())
            .cloned()
            .collect();
        let relaxed_ground = ground_with(&relaxed, unsimplified).map_err(AsgError::Ground)?;
        let candidates = Solver::new().max_models(16).solve(&relaxed_ground);
        let mut per_candidate: Vec<Vec<String>> = Vec::new();
        for m in candidates.models() {
            per_candidate.push(violated_constraints(&grounded, m.atoms()));
        }
        let decisive: Vec<String> = per_candidate
            .first()
            .map(|first| {
                first
                    .iter()
                    .filter(|c| per_candidate.iter().all(|v| v.contains(c)))
                    .cloned()
                    .collect()
            })
            .unwrap_or_default();
        diagnoses.push(TreeDiagnosis {
            tree: g.explain_tree(tree),
            per_candidate,
            decisive,
            base_unsatisfiable: !candidates.satisfiable(),
        });
    }
    Ok(PolicyExplanation::Rejected { trees: diagnoses })
}

/// Explains why `atom` holds in the answer set that admits `policy`
/// (a derivation proof through the tree program). `None` if the policy is
/// rejected or the atom is not in the witnessing answer set.
///
/// # Errors
///
/// Propagates grounding failures.
pub fn explain_policy_atom(
    gpm: &Asg,
    context: &Program,
    policy: &str,
    atom: &Atom,
) -> Result<Option<Derivation>, AsgError> {
    let g = gpm.with_context(context);
    let parser = EarleyParser::new(g.cfg());
    let tokens = agenp_grammar::Cfg::tokenize(policy);
    let unsimplified = GroundOptions {
        simplify: false,
        ..GroundOptions::default()
    };
    for tree in parser.parse_with(&tokens, ParseOptions::default()) {
        let program = g.tree_program(&tree);
        let grounded = ground_with(&program, unsimplified).map_err(AsgError::Ground)?;
        let result = Solver::new().max_models(1).solve(&grounded);
        if let Some(model) = result.models().first() {
            return Ok(explain_atom(&grounded, model, atom));
        }
    }
    Ok(None)
}

/// One mutable context fact and its admissible alternatives, for
/// counterfactual search.
#[derive(Clone, Debug)]
pub struct MutableFact {
    /// The fact as it currently stands.
    pub current: Rule,
    /// Alternative facts it could be replaced by.
    pub alternatives: Vec<Rule>,
}

impl MutableFact {
    /// Parses a mutable fact and its alternatives from ASP fact syntax.
    ///
    /// # Panics
    ///
    /// Panics on parse errors (intended for statically known facts).
    pub fn parse(current: &str, alternatives: &[&str]) -> MutableFact {
        MutableFact {
            current: current.parse().expect("current fact parses"),
            alternatives: alternatives
                .iter()
                .map(|a| a.parse().expect("alternative fact parses"))
                .collect(),
        }
    }
}

/// A counterfactual explanation: the minimal set of context-fact changes
/// that flips the policy's membership.
#[derive(Clone, Debug)]
pub struct Counterfactual {
    /// `(from, to)` fact replacements.
    pub changes: Vec<(Rule, Rule)>,
}

impl fmt::Display for Counterfactual {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (from, to)) in self.changes.iter().enumerate() {
            if i > 0 {
                write!(f, "; and ")?;
            }
            let from_text = from.to_string();
            let to_text = to.to_string();
            write!(
                f,
                "if `{}` had been `{}`",
                from_text.trim_end_matches('.'),
                to_text.trim_end_matches('.')
            )?;
        }
        Ok(())
    }
}

/// Searches for a minimal counterfactual: the fewest replacements among
/// `mutable` facts (each fact changed at most once) such that the policy's
/// membership in `L(gpm(context'))` becomes `want_accept`. Facts in
/// `context` that equal a `MutableFact::current` are replaced; all other
/// context facts are kept. Returns `None` if no combination within
/// `max_changes` flips the outcome.
///
/// # Errors
///
/// Propagates grounding failures.
pub fn counterfactual(
    gpm: &Asg,
    context: &Program,
    policy: &str,
    mutable: &[MutableFact],
    want_accept: bool,
    max_changes: usize,
) -> Result<Option<Counterfactual>, AsgError> {
    // Quick exit: already the desired outcome.
    if gpm.with_context(context).accepts(policy)? == want_accept {
        return Ok(Some(Counterfactual {
            changes: Vec::new(),
        }));
    }
    // Enumerate subsets of mutable facts by increasing size, then
    // alternatives per chosen fact (cartesian).
    let n = mutable.len();
    for size in 1..=max_changes.min(n) {
        for combo in combinations(n, size) {
            if let Some(cf) = try_combo(gpm, context, policy, mutable, &combo, want_accept)? {
                return Ok(Some(cf));
            }
        }
    }
    Ok(None)
}

/// All `k`-element index combinations of `0..n`, in lexicographic order.
fn combinations(n: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(k);
    fn rec(n: usize, k: usize, start: usize, current: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if current.len() == k {
            out.push(current.clone());
            return;
        }
        for i in start..n {
            current.push(i);
            rec(n, k, i + 1, current, out);
            current.pop();
        }
    }
    rec(n, k, 0, &mut current, &mut out);
    out
}

fn try_combo(
    gpm: &Asg,
    context: &Program,
    policy: &str,
    mutable: &[MutableFact],
    combo: &[usize],
    want_accept: bool,
) -> Result<Option<Counterfactual>, AsgError> {
    // Cartesian product over alternatives of the chosen facts.
    let mut choice = vec![0usize; combo.len()];
    loop {
        let mut ctx = Program::new();
        let mut changes = Vec::new();
        for rule in context.rules() {
            let replaced = combo
                .iter()
                .enumerate()
                .find_map(|(k, &mi)| (mutable[mi].current == *rule).then_some((k, mi)));
            match replaced {
                Some((k, mi)) => {
                    let alt = &mutable[mi].alternatives[choice[k]];
                    ctx.push(alt.clone());
                    changes.push((mutable[mi].current.clone(), alt.clone()));
                }
                None => ctx.push(rule.clone()),
            }
        }
        if changes.len() == combo.len() && gpm.with_context(&ctx).accepts(policy)? == want_accept {
            return Ok(Some(Counterfactual { changes }));
        }
        // Advance the cartesian counter.
        let mut k = 0;
        loop {
            if k == choice.len() {
                return Ok(None);
            }
            choice[k] += 1;
            if choice[k] < mutable[combo[k]].alternatives.len() {
                break;
            }
            choice[k] = 0;
            k += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::cav;
    use agenp_learn::Learner;

    fn learned_cav() -> Asg {
        let train = cav::samples(64, 7);
        let task = cav::learning_task(&train, None);
        let h = Learner::new().learn(&task).expect("learnable");
        h.apply(&task.grammar)
    }

    #[test]
    fn accepted_policies_are_explained_with_answer_sets() {
        let gpm = learned_cav();
        let ctx = cav::CavContext {
            loa: 5,
            limit: 5,
            rain: false,
            emergency: false,
        };
        let e = explain_policy(&gpm, &ctx.to_program(), "accept park").unwrap();
        match e {
            PolicyExplanation::Accepted { tree, answer_set } => {
                assert!(tree.contains("policy"));
                assert!(answer_set
                    .iter()
                    .any(|a| a.to_string().contains("task_req(4)")));
            }
            other => panic!("expected Accepted, got {other:?}"),
        }
    }

    #[test]
    fn rejections_name_the_decisive_constraint() {
        let gpm = learned_cav();
        let ctx = cav::CavContext {
            loa: 2,
            limit: 5,
            rain: false,
            emergency: false,
        };
        let e = explain_policy(&gpm, &ctx.to_program(), "accept park").unwrap();
        match e {
            PolicyExplanation::Rejected { trees } => {
                assert_eq!(trees.len(), 1);
                let decisive = &trees[0].decisive;
                assert!(
                    decisive
                        .iter()
                        .any(|c| c.contains("task_req(4)") && c.contains("loa(2)")),
                    "decisive: {decisive:?}"
                );
            }
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    #[test]
    fn garbage_is_not_in_language() {
        let gpm = learned_cav();
        let ctx = cav::CavContext {
            loa: 2,
            limit: 5,
            rain: false,
            emergency: false,
        };
        let e = explain_policy(&gpm, &ctx.to_program(), "launch rockets").unwrap();
        assert!(matches!(e, PolicyExplanation::NotInLanguage));
    }

    #[test]
    fn atom_derivations_cross_the_tree() {
        let gpm = learned_cav();
        let ctx = cav::CavContext {
            loa: 5,
            limit: 5,
            rain: false,
            emergency: false,
        };
        let atom: Atom = "task_req(4)".parse().unwrap();
        let d = explain_policy_atom(&gpm, &ctx.to_program(), "accept park", &atom)
            .unwrap()
            .expect("task_req(4) holds");
        // Derived from req(4)@2 contributed by the `park` production.
        assert!(d.render().contains("req(4)@2"), "{}", d.render());
    }

    #[test]
    fn counterfactual_finds_single_fact_flip() {
        let gpm = learned_cav();
        let ctx = cav::CavContext {
            loa: 2,
            limit: 5,
            rain: false,
            emergency: false,
        };
        let mutable = vec![MutableFact::parse(
            "loa(2).",
            &["loa(0).", "loa(1).", "loa(3).", "loa(4).", "loa(5)."],
        )];
        let cf = counterfactual(
            &gpm,
            &ctx.to_program(),
            "accept overtake",
            &mutable,
            true,
            1,
        )
        .unwrap()
        .expect("a counterfactual exists");
        assert_eq!(cf.changes.len(), 1);
        let text = cf.to_string();
        assert!(text.contains("loa(2)"), "{text}");
        // The chosen alternative must actually flip the outcome.
        assert!(
            cf.changes[0].1.to_string().contains("loa(3)")
                || cf.changes[0].1.to_string().contains("loa(4)")
                || cf.changes[0].1.to_string().contains("loa(5)"),
            "{text}"
        );
    }

    #[test]
    fn counterfactual_for_already_satisfied_goal_is_empty() {
        let gpm = learned_cav();
        let ctx = cav::CavContext {
            loa: 5,
            limit: 5,
            rain: false,
            emergency: false,
        };
        let cf = counterfactual(&gpm, &ctx.to_program(), "accept park", &[], true, 2)
            .unwrap()
            .expect("already accepted");
        assert!(cf.changes.is_empty());
    }

    #[test]
    fn counterfactual_respects_change_budget() {
        let gpm = learned_cav();
        // Both loa and limit are deficient: one change cannot fix it.
        let ctx = cav::CavContext {
            loa: 2,
            limit: 2,
            rain: false,
            emergency: false,
        };
        let mutable = vec![
            MutableFact::parse("loa(2).", &["loa(5)."]),
            MutableFact::parse("limit(2).", &["limit(5)."]),
        ];
        let one =
            counterfactual(&gpm, &ctx.to_program(), "accept park", &mutable, true, 1).unwrap();
        assert!(one.is_none(), "one change cannot satisfy both constraints");
        let two = counterfactual(&gpm, &ctx.to_program(), "accept park", &mutable, true, 2)
            .unwrap()
            .expect("two changes suffice");
        assert_eq!(two.changes.len(), 2);
    }
}
