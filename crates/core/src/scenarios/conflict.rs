//! Context-dependent conflict resolution (paper §V-A): when two applicable
//! policies contradict, "one may need to decide which strategy to adopt
//! depending on the context. Approaches like learning from human decisions
//! about conflict resolutions can be adopted or one can specify additional
//! policies that indicate which conflict resolution strategy to adopt based
//! on the context."
//!
//! This module does exactly that: a *resolution GPM* whose language under a
//! conflict context is the set of acceptable resolution strategies, learned
//! from logged administrator decisions, and pluggable into the PDP.

use agenp_asp::{Program, Term};
use agenp_grammar::{Asg, ProdId};
use agenp_learn::{
    Example, HypothesisSpace, LearningTask, ModeArg, ModeAtom, ModeBias, ModeLiteral,
};
use agenp_policy::{Decision, Effect, ResolutionStrategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The situation surrounding a policy conflict.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConflictContext {
    /// Is this a life-safety / rescue situation?
    pub emergency: bool,
    /// Does the conflict involve a security-sensitive resource?
    pub sensitive_resource: bool,
    /// Is the requesting party external to the coalition?
    pub external_party: bool,
}

impl ConflictContext {
    /// Samples a random conflict context.
    pub fn random(rng: &mut StdRng) -> ConflictContext {
        ConflictContext {
            emergency: rng.gen_bool(0.25),
            sensitive_resource: rng.gen_bool(0.4),
            external_party: rng.gen_bool(0.3),
        }
    }

    /// The ASP facts for the context.
    pub fn to_program(self) -> Program {
        let b = |x: bool| if x { "yes" } else { "no" };
        format!(
            "emergency({}). sensitive({}). external({}).",
            b(self.emergency),
            b(self.sensitive_resource),
            b(self.external_party),
        )
        .parse()
        .expect("conflict facts always parse")
    }
}

/// The strategies, as policy strings.
pub const STRATEGIES: [(&str, ResolutionStrategy); 2] = [
    ("resolve deny_overrides", ResolutionStrategy::DenyOverrides),
    (
        "resolve permit_overrides",
        ResolutionStrategy::PermitOverrides,
    ),
];

/// The administrator's ground-truth doctrine: emergencies favour permits
/// (rescue first) *unless* an external party touches a sensitive resource;
/// everything else is deny-biased.
pub fn oracle(ctx: ConflictContext) -> ResolutionStrategy {
    if ctx.emergency && !(ctx.sensitive_resource && ctx.external_party) {
        ResolutionStrategy::PermitOverrides
    } else {
        ResolutionStrategy::DenyOverrides
    }
}

/// The resolution-policy grammar: one production per strategy.
pub fn grammar() -> Asg {
    r#"
        policy -> "resolve" "deny_overrides"   { strat(deny). }
        policy -> "resolve" "permit_overrides" { strat(permit). }
    "#
    .parse()
    .expect("resolution grammar is well-formed")
}

/// The hypothesis space: constraints over the conflict context per strategy
/// production.
pub fn hypothesis_space() -> HypothesisSpace {
    let yn = || ModeArg::Choice(vec![Term::sym("yes"), Term::sym("no")]);
    ModeBias::constraints(
        vec![ProdId::from_index(0), ProdId::from_index(1)],
        vec![
            ModeLiteral::positive(ModeAtom::local("emergency", vec![yn()])),
            ModeLiteral::positive(ModeAtom::local("sensitive", vec![yn()])),
            ModeLiteral::positive(ModeAtom::local("external", vec![yn()])),
        ],
    )
    .max_body(3)
    .max_vars(0)
    .generate()
}

/// Builds the task from logged administrator decisions: the chosen strategy
/// is a positive example, the other a negative one.
pub fn learning_task(n: usize, seed: u64) -> LearningTask {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut task = LearningTask::new(grammar(), hypothesis_space());
    for _ in 0..n {
        let ctx = ConflictContext::random(&mut rng);
        let chosen = oracle(ctx);
        for (text, strategy) in STRATEGIES {
            let e = Example::in_context(text, ctx.to_program());
            if strategy == chosen {
                task = task.pos(e);
            } else {
                task = task.neg(e);
            }
        }
    }
    task
}

/// The strategy a learned GPM selects for a context: the unique admitted
/// strategy, falling back to deny-overrides when ambiguous or empty (safe
/// default).
pub fn select_strategy(gpm: &Asg, ctx: ConflictContext) -> ResolutionStrategy {
    let g = gpm.with_context(&ctx.to_program());
    let admitted: Vec<ResolutionStrategy> = STRATEGIES
        .iter()
        .filter(|(text, _)| g.accepts(text).unwrap_or(false))
        .map(|(_, s)| *s)
        .collect();
    match admitted.as_slice() {
        [one] => *one,
        _ => ResolutionStrategy::DenyOverrides,
    }
}

/// Fraction of fresh conflict contexts where the learned selector matches
/// the administrator doctrine.
pub fn selector_accuracy(gpm: &Asg, n: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let correct = (0..n)
        .filter(|_| {
            let ctx = ConflictContext::random(&mut rng);
            select_strategy(gpm, ctx) == oracle(ctx)
        })
        .count();
    correct as f64 / n.max(1) as f64
}

/// Resolves a concrete conflicting decision pair with the selected
/// strategy.
pub fn resolve_conflict(
    gpm: &Asg,
    ctx: ConflictContext,
    first: Effect,
    second: Effect,
) -> Decision {
    match select_strategy(gpm, ctx).resolve(first, second) {
        Effect::Permit => Decision::Permit,
        Effect::Deny => Decision::Deny,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agenp_learn::Learner;

    #[test]
    fn doctrine_oracle() {
        let calm = ConflictContext {
            emergency: false,
            sensitive_resource: false,
            external_party: false,
        };
        assert_eq!(oracle(calm), ResolutionStrategy::DenyOverrides);
        let rescue = ConflictContext {
            emergency: true,
            ..calm
        };
        assert_eq!(oracle(rescue), ResolutionStrategy::PermitOverrides);
        let spy = ConflictContext {
            emergency: true,
            sensitive_resource: true,
            external_party: true,
        };
        assert_eq!(oracle(spy), ResolutionStrategy::DenyOverrides);
    }

    #[test]
    fn learns_the_resolution_doctrine() {
        // Enough logged decisions to include the rare exception case
        // (emergency + sensitive + external, ~3% of contexts).
        let task = learning_task(160, 17);
        let h = Learner::new().learn(&task).expect("doctrine is learnable");
        let gpm = h.apply(&task.grammar);
        let acc = selector_accuracy(&gpm, 300, 88);
        assert!(acc > 0.97, "selector accuracy {acc}; hypothesis:\n{h}");
    }

    #[test]
    fn learned_selector_resolves_conflicts() {
        let task = learning_task(160, 17);
        let h = Learner::new().learn(&task).expect("learnable");
        let gpm = h.apply(&task.grammar);
        let rescue = ConflictContext {
            emergency: true,
            sensitive_resource: false,
            external_party: false,
        };
        assert_eq!(
            resolve_conflict(&gpm, rescue, Effect::Permit, Effect::Deny),
            Decision::Permit
        );
        let calm = ConflictContext {
            emergency: false,
            ..rescue
        };
        assert_eq!(
            resolve_conflict(&gpm, calm, Effect::Permit, Effect::Deny),
            Decision::Deny
        );
    }

    #[test]
    fn ambiguous_grammar_falls_back_to_deny() {
        // The unconstrained grammar admits both strategies → safe default.
        let gpm = grammar();
        let mut rng = StdRng::seed_from_u64(3);
        let ctx = ConflictContext::random(&mut rng);
        assert_eq!(
            select_strategy(&gpm, ctx),
            ResolutionStrategy::DenyOverrides
        );
    }
}
