//! The connected-and-autonomous-vehicle scenario (paper §IV-A, after
//! Cunnington et al. \[25\]): a CAV must learn a generative policy model that
//! states whether a request to execute a driving task should be accepted,
//! given the vehicle's SAE level of autonomy (LOA), the region's transient
//! LOA limit, the weather, and emergency-vehicle presence.
//!
//! The companion study's dataset is not public, so this module synthesizes
//! the scenario it describes: a ground-truth oracle in the same attribute
//! vocabulary, i.i.d. context sampling, and conversions to both the
//! symbolic learning task and the tabular form the shallow-ML baselines
//! consume — preserving the structure of the paper's comparison.

use agenp_asp::{CmpOp, Program, Term};
use agenp_baselines::{Dataset, Feature};
use agenp_grammar::{Asg, ProdId};
use agenp_learn::{
    Example, HypothesisSpace, LearningTask, ModeAtom, ModeBias, ModeCmp, ModeLiteral,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The driving tasks and their required LOA.
pub const TASKS: [(&str, i64); 4] = [
    ("lane_keep", 1),
    ("navigate", 2),
    ("overtake", 3),
    ("park", 4),
];

/// A driving context.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CavContext {
    /// Vehicle level of autonomy (SAE 0–5).
    pub loa: i64,
    /// Region's transient LOA limit (0–5).
    pub limit: i64,
    /// Raining?
    pub rain: bool,
    /// Emergency vehicle nearby?
    pub emergency: bool,
}

impl CavContext {
    /// Encodes the context as ASP facts.
    pub fn to_program(self) -> Program {
        format!(
            "loa({}). limit({}). weather({}). emergency({}).",
            self.loa,
            self.limit,
            if self.rain { "rain" } else { "clear" },
            if self.emergency { "yes" } else { "no" },
        )
        .parse()
        .expect("context facts always parse")
    }

    /// Samples a uniform random context.
    pub fn random(rng: &mut StdRng) -> CavContext {
        CavContext {
            loa: rng.gen_range(0..=5),
            limit: rng.gen_range(0..=5),
            rain: rng.gen_bool(0.4),
            emergency: rng.gen_bool(0.2),
        }
    }
}

/// The ground-truth acceptance oracle: a task is accepted iff the vehicle
/// and the region both support its required LOA, high-autonomy tasks are
/// suspended in rain, and everything except lane-keeping is suspended when
/// an emergency vehicle is present.
pub fn oracle(ctx: CavContext, task: &str) -> bool {
    let req = required_loa(task);
    req <= ctx.loa && req <= ctx.limit && !(ctx.rain && req >= 3) && !(ctx.emergency && req >= 2)
}

/// The LOA a task requires.
///
/// # Panics
///
/// Panics on an unknown task name.
pub fn required_loa(task: &str) -> i64 {
    TASKS
        .iter()
        .find(|(t, _)| *t == task)
        .unwrap_or_else(|| panic!("unknown task {task}"))
        .1
}

/// The policy string requesting acceptance of a task.
pub fn policy_text(task: &str) -> String {
    format!("accept {task}")
}

/// The CAV policy-language grammar: `accept <task>`, with each task
/// production contributing its required LOA and the policy production
/// lifting it to `task_req/1`.
pub fn grammar() -> Asg {
    let mut src = String::from("policy -> \"accept\" task { task_req(X) :- req(X)@2. }\n");
    for (task, req) in TASKS {
        src.push_str(&format!(
            "task -> \"{task}\" {{ req({req}). task({task}). }}\n"
        ));
    }
    src.parse().expect("CAV grammar is well-formed")
}

/// The production id of the `policy -> "accept" task` rule.
pub fn accept_production() -> ProdId {
    ProdId::from_index(0)
}

/// The hypothesis space: constraints on the accept production over
/// `task_req/1`, `loa/1`, `limit/1`, `weather/1`, `emergency/1`, with
/// variable-variable `<` comparisons and `>= k` threshold comparisons.
pub fn hypothesis_space() -> HypothesisSpace {
    ModeBias::constraints(
        vec![accept_production()],
        vec![
            ModeLiteral::positive(ModeAtom::local("task_req", vec![agenp_learn::ModeArg::Var])),
            ModeLiteral::positive(ModeAtom::local("loa", vec![agenp_learn::ModeArg::Var])),
            ModeLiteral::positive(ModeAtom::local("limit", vec![agenp_learn::ModeArg::Var])),
            ModeLiteral::positive(ModeAtom::local(
                "weather",
                vec![agenp_learn::ModeArg::Choice(vec![
                    Term::sym("rain"),
                    Term::sym("clear"),
                ])],
            )),
            ModeLiteral::positive(ModeAtom::local(
                "emergency",
                vec![agenp_learn::ModeArg::Choice(vec![Term::sym("yes")])],
            )),
        ],
    )
    .max_body(2)
    .max_vars(2)
    .with_comparisons(vec![ModeCmp {
        ops: vec![CmpOp::Ge],
        constants: vec![Term::Int(2), Term::Int(3), Term::Int(4)],
    }])
    .with_var_comparisons(vec![CmpOp::Lt])
    .generate()
}

/// One labelled sample: a context, a task, and the oracle's verdict.
#[derive(Clone, Debug)]
pub struct Sample {
    /// The driving context.
    pub context: CavContext,
    /// The requested task.
    pub task: &'static str,
    /// The oracle label (accept?).
    pub accept: bool,
}

/// Samples `n` i.i.d. labelled requests.
pub fn samples(n: usize, seed: u64) -> Vec<Sample> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let context = CavContext::random(&mut rng);
            let task = TASKS[rng.gen_range(0..TASKS.len())].0;
            Sample {
                context,
                task,
                accept: oracle(context, task),
            }
        })
        .collect()
}

/// Flips each label with probability `p` (noise injection, §IV-C). Returns
/// the number of flipped labels.
pub fn inject_noise(samples: &mut [Sample], p: f64, seed: u64) -> usize {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut flipped = 0;
    for s in samples.iter_mut() {
        if rng.gen_bool(p) {
            s.accept = !s.accept;
            flipped += 1;
        }
    }
    flipped
}

/// Builds the symbolic learning task from samples. With
/// `penalty = Some(k)`, examples become soft (noise-tolerant learning).
pub fn learning_task(samples: &[Sample], penalty: Option<u32>) -> LearningTask {
    let mut task = LearningTask::new(grammar(), hypothesis_space());
    for s in samples {
        let mut e = Example::in_context(policy_text(s.task), s.context.to_program());
        if let Some(p) = penalty {
            e = e.with_penalty(p);
        }
        if s.accept {
            task = task.pos(e);
        } else {
            task = task.neg(e);
        }
    }
    task
}

/// Accuracy of a (learned) GPM against labelled samples: the model predicts
/// "accept" iff the accept policy is in its language under the context.
pub fn gpm_accuracy(gpm: &Asg, test: &[Sample]) -> f64 {
    if test.is_empty() {
        return 1.0;
    }
    let correct = test
        .iter()
        .filter(|s| {
            let predicted = gpm
                .with_context(&s.context.to_program())
                .accepts(&policy_text(s.task))
                .unwrap_or(false);
            predicted == s.accept
        })
        .count();
    correct as f64 / test.len() as f64
}

/// Converts samples to the tabular form the baselines consume.
pub fn to_dataset(samples: &[Sample]) -> Dataset {
    let mut d = Dataset::new(
        vec![
            "loa".into(),
            "limit".into(),
            "task".into(),
            "weather".into(),
            "emergency".into(),
        ],
        2,
    );
    for s in samples {
        d.push(
            vec![
                Feature::Num(s.context.loa as f64),
                Feature::Num(s.context.limit as f64),
                Feature::cat(s.task),
                Feature::cat(if s.context.rain { "rain" } else { "clear" }),
                Feature::cat(if s.context.emergency { "yes" } else { "no" }),
            ],
            usize::from(s.accept),
        );
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use agenp_learn::Learner;

    #[test]
    fn oracle_matches_spec() {
        let calm = CavContext {
            loa: 5,
            limit: 5,
            rain: false,
            emergency: false,
        };
        assert!(oracle(calm, "park"));
        assert!(oracle(calm, "lane_keep"));
        let low = CavContext { loa: 2, ..calm };
        assert!(!oracle(low, "overtake"));
        assert!(oracle(low, "navigate"));
        let limited = CavContext { limit: 1, ..calm };
        assert!(!oracle(limited, "navigate"));
        let rainy = CavContext { rain: true, ..calm };
        assert!(!oracle(rainy, "overtake"));
        assert!(oracle(rainy, "navigate"));
        let emergency = CavContext {
            emergency: true,
            ..calm
        };
        assert!(!oracle(emergency, "navigate"));
        assert!(oracle(emergency, "lane_keep"));
    }

    #[test]
    fn grammar_parses_all_policies() {
        let g = grammar();
        for (t, _) in TASKS {
            // The unconstrained grammar accepts every syntactic policy.
            assert!(g.accepts(&policy_text(t)).unwrap());
        }
        assert!(!g.accepts("accept teleport").unwrap());
    }

    #[test]
    fn hypothesis_space_contains_ground_truth() {
        let space = hypothesis_space();
        let texts: Vec<String> = space
            .candidates()
            .iter()
            .map(|c| c.rule.to_string())
            .collect();
        assert!(
            texts.contains(&":- task_req(V1), loa(V2), V2 < V1.".to_owned())
                || texts.contains(&":- loa(V1), task_req(V2), V1 < V2.".to_owned()),
            "LOA-deficit constraint missing; space has {} candidates",
            texts.len()
        );
        assert!(texts
            .iter()
            .any(|t| t.contains("weather(rain)") && t.contains(">= 3")));
        assert!(texts
            .iter()
            .any(|t| t.contains("emergency(yes)") && t.contains(">= 2")));
    }

    #[test]
    fn learns_accurate_model_from_modest_data() {
        let train = samples(48, 11);
        let test = samples(200, 99);
        let task = learning_task(&train, None);
        let h = Learner::new().learn(&task).expect("task is learnable");
        let gpm = h.apply(&task.grammar);
        let acc = gpm_accuracy(&gpm, &test);
        assert!(acc > 0.9, "accuracy {acc} too low; hypothesis:\n{h}");
    }

    #[test]
    fn dataset_conversion_is_aligned() {
        let s = samples(10, 3);
        let d = to_dataset(&s);
        assert_eq!(d.len(), 10);
        assert_eq!(d.n_features(), 5);
        for (row, sample) in d.rows.iter().zip(&s) {
            assert_eq!(row[0].as_num(), Some(sample.context.loa as f64));
        }
    }

    #[test]
    fn noise_injection_flips_labels() {
        let mut s = samples(100, 5);
        let before: Vec<bool> = s.iter().map(|x| x.accept).collect();
        let flipped = inject_noise(&mut s, 0.2, 8);
        let changed = s
            .iter()
            .zip(&before)
            .filter(|(a, &b)| a.accept != b)
            .count();
        assert_eq!(flipped, changed);
        assert!(flipped > 5 && flipped < 40);
    }
}
