//! The paper's §IV application scenarios as synthetic workload generators:
//! each provides a policy-language grammar, a ground-truth oracle, example
//! generators, and evaluation helpers, so experiments can measure how well
//! the learned generative policy model recovers the oracle.

pub mod cav;
pub mod conflict;
pub mod hybrid;
pub mod resupply;
pub mod xacml;
