//! The logistical-resupply scenario (paper §IV-B, after the DAIS-ITA
//! coalition scenario \[26\]): a resupply convoy must pick a route and a
//! departure slot under per-mission conditions — route threat levels,
//! weather, and the coalition's current risk appetite. Policies are learned
//! from after-action reviews of earlier missions, so "as time progresses …
//! the learning tasks become easier and more accurate as more training
//! samples become available".

use agenp_asp::{CmpOp, Program, Term};
use agenp_grammar::{Asg, ProdId};
use agenp_learn::{
    Example, HypothesisSpace, LearningTask, ModeArg, ModeAtom, ModeBias, ModeCmp, ModeLiteral,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The route options.
pub const ROUTES: [&str; 3] = ["north", "south", "east"];
/// The departure slots.
pub const SLOTS: [&str; 2] = ["day", "night"];

/// One mission's conditions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Mission {
    /// Threat level per route (0–3, aligned with [`ROUTES`]).
    pub threat: [i64; 3],
    /// Raining?
    pub rain: bool,
    /// Risk appetite (0 = risk-averse … 3 = aggressive).
    pub appetite: i64,
}

impl Mission {
    /// Samples a random mission.
    pub fn random(rng: &mut StdRng) -> Mission {
        Mission {
            threat: [
                rng.gen_range(0..=3),
                rng.gen_range(0..=3),
                rng.gen_range(0..=3),
            ],
            rain: rng.gen_bool(0.35),
            appetite: rng.gen_range(0..=2),
        }
    }

    /// The ASP context facts for the mission.
    pub fn to_program(self) -> Program {
        let mut src = String::new();
        for (route, threat) in ROUTES.iter().zip(self.threat) {
            src.push_str(&format!("ctx_threat({route}, {threat}). "));
        }
        src.push_str(&format!(
            "weather({}). appetite({}).",
            if self.rain { "rain" } else { "clear" },
            self.appetite
        ));
        src.parse().expect("mission facts always parse")
    }
}

/// A convoy plan: a route and a departure slot.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Plan {
    /// Index into [`ROUTES`].
    pub route: usize,
    /// Index into [`SLOTS`].
    pub slot: usize,
}

impl Plan {
    /// All six candidate plans.
    pub fn all() -> Vec<Plan> {
        (0..ROUTES.len())
            .flat_map(|route| (0..SLOTS.len()).map(move |slot| Plan { route, slot }))
            .collect()
    }

    /// The plan's policy string, e.g. `route north depart day`.
    pub fn text(self) -> String {
        format!("route {} depart {}", ROUTES[self.route], SLOTS[self.slot])
    }
}

/// The ground-truth plan validity oracle: the route's threat must not
/// exceed the risk appetite, the east route floods in rain, and night
/// movement is only allowed on zero-threat routes.
pub fn oracle(mission: Mission, plan: Plan) -> bool {
    let threat = mission.threat[plan.route];
    threat <= mission.appetite
        && !(mission.rain && ROUTES[plan.route] == "east")
        && !(SLOTS[plan.slot] == "night" && threat >= 1)
}

/// The plan grammar.
pub fn grammar() -> Asg {
    let mut src = String::from(
        "plan -> \"route\" route \"depart\" slot {
            my_route(R) :- route(R)@2.
            my_slot(S) :- slot(S)@4.
            my_threat(T) :- my_route(R), ctx_threat(R, T).
        }\n",
    );
    for r in ROUTES {
        src.push_str(&format!("route -> \"{r}\" {{ route({r}). }}\n"));
    }
    for s in SLOTS {
        src.push_str(&format!("slot -> \"{s}\" {{ slot({s}). }}\n"));
    }
    src.parse().expect("resupply grammar is well-formed")
}

/// The production id of the plan rule.
pub fn plan_production() -> ProdId {
    ProdId::from_index(0)
}

/// The hypothesis space over mission conditions and plan features.
pub fn hypothesis_space() -> HypothesisSpace {
    ModeBias::constraints(
        vec![plan_production()],
        vec![
            ModeLiteral::positive(ModeAtom::local("my_threat", vec![ModeArg::Var])),
            ModeLiteral::positive(ModeAtom::local("appetite", vec![ModeArg::Var])),
            ModeLiteral::positive(ModeAtom::local(
                "my_route",
                vec![ModeArg::Choice(
                    ROUTES.iter().map(|r| Term::sym(r)).collect(),
                )],
            )),
            ModeLiteral::positive(ModeAtom::local(
                "my_slot",
                vec![ModeArg::Choice(
                    SLOTS.iter().map(|s| Term::sym(s)).collect(),
                )],
            )),
            ModeLiteral::positive(ModeAtom::local(
                "weather",
                vec![ModeArg::Choice(vec![Term::sym("rain"), Term::sym("clear")])],
            )),
        ],
    )
    .max_body(2)
    .max_vars(2)
    .with_comparisons(vec![ModeCmp {
        ops: vec![CmpOp::Ge],
        constants: vec![Term::Int(1), Term::Int(2), Term::Int(3)],
    }])
    .with_var_comparisons(vec![CmpOp::Lt])
    .generate()
}

/// Adds utility preferences to a (possibly learned) plan GPM: prefer
/// low-threat routes and daytime movement (paper §I's *utility-based*
/// policy type, expressed as weak constraints on the plan production).
pub fn with_preferences(gpm: &Asg) -> Asg {
    let mut g = gpm.clone();
    let prefs: agenp_asp::Program = "
        :~ my_threat(T). [T@1]
        :~ my_slot(night). [1@0]
    "
    .parse()
    .expect("preference program parses");
    let mut annotated = g.annotation(plan_production()).clone();
    annotated.extend_from(&prefs);
    g.set_annotation(plan_production(), annotated)
        .expect("plan production exists");
    g
}

/// The best admitted plan for a mission under the GPM's weak-constraint
/// preferences, with its cost. `None` if no plan is admitted.
pub fn preferred_plan(gpm: &Asg, mission: Mission) -> Option<(Plan, agenp_asp::CostVector)> {
    let g = gpm.with_context(&mission.to_program());
    let mut best: Option<(Plan, agenp_asp::CostVector)> = None;
    for plan in Plan::all() {
        let parser = agenp_grammar::EarleyParser::new(g.cfg());
        let trees = parser.parse_text(&plan.text());
        for tree in trees {
            if let Ok(Some(cost)) = g.tree_cost(&tree) {
                if best.as_ref().is_none_or(|(_, b)| cost < *b) {
                    best = Some((plan, cost));
                }
            }
        }
    }
    best
}

// --- Convoy composition (§IV-B: "how the convoy should be made up") ------

/// A convoy composition: delivery vehicles and escorts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Convoy {
    /// Delivery vehicles (2, 4, or 6).
    pub deliveries: i64,
    /// Escort vehicles (1, 2, or 3).
    pub escorts: i64,
}

impl Convoy {
    /// All nine compositions.
    pub fn all() -> Vec<Convoy> {
        [2i64, 4, 6]
            .iter()
            .flat_map(|&d| {
                [1i64, 2, 3].map(|e| Convoy {
                    deliveries: d,
                    escorts: e,
                })
            })
            .collect()
    }
}

/// A full convoy plan: route, slot, and composition.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConvoyPlan {
    /// The route/slot part.
    pub plan: Plan,
    /// The composition part.
    pub convoy: Convoy,
}

impl ConvoyPlan {
    /// All 54 candidate convoy plans.
    pub fn all() -> Vec<ConvoyPlan> {
        Plan::all()
            .into_iter()
            .flat_map(|plan| {
                Convoy::all()
                    .into_iter()
                    .map(move |convoy| ConvoyPlan { plan, convoy })
            })
            .collect()
    }

    /// The policy string, e.g. `route north depart day convoy d4 e2`.
    pub fn text(self) -> String {
        format!(
            "{} convoy d{} e{}",
            self.plan.text(),
            self.convoy.deliveries,
            self.convoy.escorts
        )
    }
}

/// Ground truth for full convoy plans: the route/slot rules of [`oracle`]
/// plus composition doctrine — escorts must cover the route threat, and the
/// delivery-to-escort ratio must not exceed 2:1.
pub fn convoy_oracle(mission: Mission, cp: ConvoyPlan) -> bool {
    oracle(mission, cp.plan)
        && cp.convoy.escorts >= mission.threat[cp.plan.route]
        && cp.convoy.deliveries <= 2 * cp.convoy.escorts
}

/// The deeper convoy grammar: the composition subtree puts delivery and
/// escort counts two levels below the plan node, exercising multi-level
/// traces.
pub fn convoy_grammar() -> Asg {
    let mut src = String::from(
        r#"plan -> "route" route "depart" slot "convoy" comp {
            my_route(R) :- route(R)@2.
            my_slot(S) :- slot(S)@4.
            my_threat(T) :- my_route(R), ctx_threat(R, T).
            my_deliveries(D) :- del(D)@6.
            my_escorts(E) :- esc(E)@6.
        }
        comp -> dcount ecount { del(D) :- del(D)@1. esc(E) :- esc(E)@2. }
"#,
    );
    for d in [2, 4, 6] {
        src.push_str(&format!("dcount -> \"d{d}\" {{ del({d}). }}\n"));
    }
    for e in [1, 2, 3] {
        src.push_str(&format!("ecount -> \"e{e}\" {{ esc({e}). }}\n"));
    }
    for r in ROUTES {
        src.push_str(&format!("route -> \"{r}\" {{ route({r}). }}\n"));
    }
    for s in SLOTS {
        src.push_str(&format!("slot -> \"{s}\" {{ slot({s}). }}\n"));
    }
    src.parse().expect("convoy grammar is well-formed")
}

/// The hypothesis space for the convoy grammar: the route/slot modes of
/// [`hypothesis_space`] extended with composition literals.
pub fn convoy_hypothesis_space() -> HypothesisSpace {
    ModeBias::constraints(
        vec![plan_production()],
        vec![
            ModeLiteral::positive(ModeAtom::local("my_threat", vec![ModeArg::Var])),
            ModeLiteral::positive(ModeAtom::local("appetite", vec![ModeArg::Var])),
            ModeLiteral::positive(ModeAtom::local("my_escorts", vec![ModeArg::Var])),
            ModeLiteral::positive(ModeAtom::local("my_deliveries", vec![ModeArg::Var])),
            ModeLiteral::positive(ModeAtom::local(
                "my_route",
                vec![ModeArg::Choice(
                    ROUTES.iter().map(|r| Term::sym(r)).collect(),
                )],
            )),
            ModeLiteral::positive(ModeAtom::local(
                "my_slot",
                vec![ModeArg::Choice(
                    SLOTS.iter().map(|s| Term::sym(s)).collect(),
                )],
            )),
            ModeLiteral::positive(ModeAtom::local(
                "weather",
                vec![ModeArg::Choice(vec![Term::sym("rain"), Term::sym("clear")])],
            )),
            ModeLiteral::positive(ModeAtom::local("ratio_cap", vec![ModeArg::Var])),
        ],
    )
    .max_body(2)
    .max_vars(2)
    .with_comparisons(vec![ModeCmp {
        ops: vec![CmpOp::Ge],
        constants: vec![Term::Int(1), Term::Int(2), Term::Int(3)],
    }])
    .with_var_comparisons(vec![CmpOp::Lt])
    .generate()
}

/// Extends a mission context with the derived ratio cap (2 × escorts is a
/// helper-computed value the ratio constraint can compare against —
/// var-times-constant arithmetic stays out of the mode language).
pub fn convoy_context(mission: Mission) -> Program {
    let mut ctx = mission.to_program();
    let helper: Program = "ratio_cap(C) :- my_escorts(E), C = E * 2."
        .parse()
        .expect("helper rule parses");
    ctx.extend_from(&helper);
    ctx
}

/// Samples labelled convoy-plan reviews.
pub fn convoy_reviews(
    n_missions: usize,
    per_mission: usize,
    seed: u64,
) -> Vec<(Mission, ConvoyPlan, bool)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let all = ConvoyPlan::all();
    let mut out = Vec::new();
    for _ in 0..n_missions {
        let mission = Mission::random(&mut rng);
        for _ in 0..per_mission {
            let cp = all[rng.gen_range(0..all.len())];
            out.push((mission, cp, convoy_oracle(mission, cp)));
        }
    }
    out
}

/// Builds the convoy learning task.
pub fn convoy_learning_task(reviews: &[(Mission, ConvoyPlan, bool)]) -> LearningTask {
    let mut task = LearningTask::new(convoy_grammar(), convoy_hypothesis_space());
    for (mission, cp, valid) in reviews {
        let e = Example::in_context(cp.text(), convoy_context(*mission));
        if *valid {
            task = task.pos(e);
        } else {
            task = task.neg(e);
        }
    }
    task
}

/// Accuracy of a learned convoy GPM on fresh missions.
pub fn convoy_gpm_accuracy(gpm: &Asg, n_missions: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut correct = 0usize;
    let mut total = 0usize;
    let all = ConvoyPlan::all();
    for _ in 0..n_missions {
        let mission = Mission::random(&mut rng);
        let g = gpm.with_context(&convoy_context(mission));
        // Sample a subset of plans per mission to bound runtime.
        for cp in all.iter().step_by(5) {
            let predicted = g.accepts(&cp.text()).unwrap_or(false);
            if predicted == convoy_oracle(mission, *cp) {
                correct += 1;
            }
            total += 1;
        }
    }
    correct as f64 / total.max(1) as f64
}

/// One after-action review datum: a mission, a plan, and whether the plan
/// was appropriate.
#[derive(Clone, Debug)]
pub struct Review {
    /// Mission conditions.
    pub mission: Mission,
    /// The reviewed plan.
    pub plan: Plan,
    /// Was the plan valid?
    pub valid: bool,
}

/// Simulates `n_missions` missions; each mission reviews `plans_per_mission`
/// randomly chosen candidate plans.
pub fn reviews(n_missions: usize, plans_per_mission: usize, seed: u64) -> Vec<Review> {
    let mut rng = StdRng::seed_from_u64(seed);
    let all = Plan::all();
    let mut out = Vec::new();
    for _ in 0..n_missions {
        let mission = Mission::random(&mut rng);
        for _ in 0..plans_per_mission {
            let plan = all[rng.gen_range(0..all.len())];
            out.push(Review {
                mission,
                plan,
                valid: oracle(mission, plan),
            });
        }
    }
    out
}

/// Builds the learning task from reviews.
pub fn learning_task(reviews: &[Review]) -> LearningTask {
    let mut task = LearningTask::new(grammar(), hypothesis_space());
    for r in reviews {
        let e = Example::in_context(r.plan.text(), r.mission.to_program());
        if r.valid {
            task = task.pos(e);
        } else {
            task = task.neg(e);
        }
    }
    task
}

/// Accuracy of a learned GPM on fresh missions (all plans of each mission
/// are scored).
pub fn gpm_accuracy(gpm: &agenp_grammar::Asg, n_missions: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut correct = 0usize;
    let mut total = 0usize;
    for _ in 0..n_missions {
        let mission = Mission::random(&mut rng);
        let g = gpm.with_context(&mission.to_program());
        for plan in Plan::all() {
            let predicted = g.accepts(&plan.text()).unwrap_or(false);
            if predicted == oracle(mission, plan) {
                correct += 1;
            }
            total += 1;
        }
    }
    correct as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use agenp_learn::Learner;

    #[test]
    fn oracle_spec() {
        let m = Mission {
            threat: [0, 2, 1],
            rain: true,
            appetite: 2,
        };
        // north: threat 0, fine day or night.
        assert!(oracle(m, Plan { route: 0, slot: 0 }));
        assert!(oracle(m, Plan { route: 0, slot: 1 }));
        // south: threat 2 ≤ appetite 2 by day, but not at night.
        assert!(oracle(m, Plan { route: 1, slot: 0 }));
        assert!(!oracle(m, Plan { route: 1, slot: 1 }));
        // east floods in rain.
        assert!(!oracle(m, Plan { route: 2, slot: 0 }));
        // low appetite blocks south.
        let averse = Mission { appetite: 1, ..m };
        assert!(!oracle(averse, Plan { route: 1, slot: 0 }));
    }

    #[test]
    fn grammar_accepts_all_plans_unconstrained() {
        let g = grammar();
        let m = Mission {
            threat: [1, 1, 1],
            rain: false,
            appetite: 0,
        };
        for p in Plan::all() {
            assert!(g.with_context(&m.to_program()).accepts(&p.text()).unwrap());
        }
    }

    #[test]
    fn learns_from_reviews_and_tracks_risk_appetite() {
        let data = reviews(30, 3, 42);
        let task = learning_task(&data);
        let h = Learner::new().learn(&task).expect("reviews are learnable");
        let gpm = h.apply(&task.grammar);
        let acc = gpm_accuracy(&gpm, 40, 777);
        assert!(acc > 0.9, "accuracy {acc}; hypothesis:\n{h}");

        // Risk-appetite shift (§IV-B): the same learned GPM re-admits a
        // previously discounted option when appetite rises.
        let cautious = Mission {
            threat: [2, 3, 3],
            rain: false,
            appetite: 1,
        };
        let bold = Mission {
            appetite: 2,
            ..cautious
        };
        let north_day = Plan { route: 0, slot: 0 };
        assert!(!oracle(cautious, north_day));
        assert!(oracle(bold, north_day));
        let g_cautious = gpm.with_context(&cautious.to_program());
        let g_bold = gpm.with_context(&bold.to_program());
        assert!(!g_cautious.accepts(&north_day.text()).unwrap());
        assert!(g_bold.accepts(&north_day.text()).unwrap());
    }

    #[test]
    fn preferences_pick_the_best_admitted_plan() {
        // Learn the hard constraints, then rank with utility preferences.
        let data = reviews(30, 3, 42);
        let task = learning_task(&data);
        let h = Learner::new().learn(&task).expect("learnable");
        let gpm = with_preferences(&h.apply(&task.grammar));
        // north is calm, south is tense, east moderate; day beats night.
        let mission = Mission {
            threat: [0, 2, 1],
            rain: false,
            appetite: 2,
        };
        let (best, cost) = preferred_plan(&gpm, mission).expect("some plan admitted");
        assert_eq!(ROUTES[best.route], "north");
        assert_eq!(SLOTS[best.slot], "day");
        assert!(cost.is_zero());
        // If north becomes hot, the preference shifts to the next-best.
        let hot = Mission {
            threat: [3, 2, 1],
            rain: false,
            appetite: 2,
        };
        let (alt, alt_cost) = preferred_plan(&gpm, hot).expect("some plan admitted");
        assert_eq!(ROUTES[alt.route], "east");
        assert_eq!(alt_cost.at_level(1), 1);
    }

    #[test]
    fn convoy_oracle_enforces_composition_doctrine() {
        let m = Mission {
            threat: [2, 0, 1],
            rain: false,
            appetite: 2,
        };
        let route_ok = Plan { route: 0, slot: 0 };
        let good = ConvoyPlan {
            plan: route_ok,
            convoy: Convoy {
                deliveries: 4,
                escorts: 2,
            },
        };
        assert!(convoy_oracle(m, good));
        // Too few escorts for a threat-2 route.
        let thin = ConvoyPlan {
            plan: route_ok,
            convoy: Convoy {
                deliveries: 2,
                escorts: 1,
            },
        };
        assert!(!convoy_oracle(m, thin));
        // Ratio over 2:1.
        let heavy = ConvoyPlan {
            plan: route_ok,
            convoy: Convoy {
                deliveries: 6,
                escorts: 2,
            },
        };
        assert!(!convoy_oracle(m, heavy));
    }

    #[test]
    fn deep_grammar_lifts_composition_through_two_levels() {
        let g = convoy_grammar();
        let m = Mission {
            threat: [0, 0, 0],
            rain: false,
            appetite: 2,
        };
        let cp = ConvoyPlan {
            plan: Plan { route: 0, slot: 0 },
            convoy: Convoy {
                deliveries: 4,
                escorts: 2,
            },
        };
        // Unconstrained grammar accepts, and the tree program carries the
        // lifted composition atoms.
        let with_ctx = g.with_context(&convoy_context(m));
        assert!(with_ctx.accepts(&cp.text()).unwrap());
        let parser = agenp_grammar::EarleyParser::new(g.cfg());
        let tree = parser.parse_text(&cp.text()).pop().unwrap();
        let prog = g.tree_program(&tree).to_string();
        assert!(prog.contains("del(4)@6_1"), "{prog}");
        assert!(prog.contains("esc(2)@6_2"), "{prog}");
    }

    #[test]
    fn learns_route_and_composition_doctrine_together() {
        let reviews = convoy_reviews(80, 5, 11);
        let task = convoy_learning_task(&reviews);
        let h = Learner::new()
            .learn(&task)
            .expect("convoy doctrine is learnable");
        let gpm = h.apply(&task.grammar);
        let acc = convoy_gpm_accuracy(&gpm, 25, 777);
        assert!(acc > 0.9, "accuracy {acc}; hypothesis: {h}");
        // The learned rules must constrain the composition (via the escort
        // count directly or the helper-derived ratio cap).
        let text = format!("{h}");
        assert!(
            text.contains("my_escorts") || text.contains("ratio_cap"),
            "{text}"
        );
    }

    #[test]
    fn accuracy_grows_with_mission_count() {
        let mut last = 0.0;
        let mut improved = false;
        for &n in &[2usize, 8, 24] {
            let data = reviews(n, 3, 9);
            let task = learning_task(&data);
            let h = Learner::new().learn(&task).expect("learnable");
            let gpm = h.apply(&task.grammar);
            let acc = gpm_accuracy(&gpm, 30, 555);
            if acc > last {
                improved = true;
            }
            last = acc;
        }
        assert!(improved, "accuracy never improved across mission counts");
        assert!(last > 0.85, "final accuracy {last}");
    }
}
