//! Hybrid statistical + symbolic policies (paper §V-C): "statistical
//! machine learned functions are used to detect 'atomic' concepts … and a
//! rule model of causation can be used to identify more complex concepts."
//!
//! A CAV's raw sensors produce numeric readings (visibility, wiper current,
//! road reflectivity); a *statistical* classifier maps them to the atomic
//! symbolic concept `weather(rain|clear)`, which feeds the *symbolic* GPM's
//! context. The experiment compares:
//!
//! * **pure statistical** — one decision tree from raw sensors straight to
//!   the accept/reject decision;
//! * **hybrid** — a decision tree for the atomic concept plus the learned
//!   symbolic GPM for the policy decision.
//!
//! Under a *policy shift* (the region tightens its LOA limit — a coalition
//! context change), the hybrid pipeline keeps working because the symbolic
//! layer conditions on the changed context facts, while the end-to-end
//! statistical model silently degrades (§V-C's "the learned function
//! becomes useless without warning").

use crate::scenarios::cav;
use agenp_baselines::{Classifier, Dataset, DecisionTree, Feature};
use agenp_grammar::Asg;
use agenp_learn::Learner;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Raw sensor readings from which weather must be inferred.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct SensorFrame {
    /// Visibility in arbitrary units (lower in rain).
    pub visibility: f64,
    /// Wiper motor current (higher in rain).
    pub wiper_current: f64,
    /// Road reflectivity (higher when wet).
    pub reflectivity: f64,
}

impl SensorFrame {
    /// Samples a frame for the given true weather, with sensor noise.
    pub fn sample(rain: bool, rng: &mut StdRng) -> SensorFrame {
        let n = |rng: &mut StdRng| rng.gen_range(-1.0..1.0);
        if rain {
            SensorFrame {
                visibility: 3.0 + n(rng),
                wiper_current: 7.0 + n(rng),
                reflectivity: 8.0 + n(rng),
            }
        } else {
            SensorFrame {
                visibility: 8.0 + n(rng),
                wiper_current: 1.0 + n(rng),
                reflectivity: 3.0 + n(rng),
            }
        }
    }

    fn features(&self) -> Vec<Feature> {
        vec![
            Feature::Num(self.visibility),
            Feature::Num(self.wiper_current),
            Feature::Num(self.reflectivity),
        ]
    }
}

/// One raw-sensed driving situation: sensors plus the non-sensor context.
#[derive(Clone, Copy, Debug)]
pub struct RawSituation {
    /// The sensor frame (weather must be inferred from it).
    pub sensors: SensorFrame,
    /// The true weather behind the sensors.
    pub rain: bool,
    /// Vehicle LOA.
    pub loa: i64,
    /// Region limit.
    pub limit: i64,
    /// Emergency vehicle nearby.
    pub emergency: bool,
    /// Requested task (index into [`cav::TASKS`]).
    pub task: usize,
}

impl RawSituation {
    /// Samples a situation; `limit_range` lets experiments shift the
    /// regional policy regime.
    pub fn sample(rng: &mut StdRng, limit_range: (i64, i64)) -> RawSituation {
        let rain = rng.gen_bool(0.4);
        RawSituation {
            sensors: SensorFrame::sample(rain, rng),
            rain,
            loa: rng.gen_range(0..=5),
            limit: rng.gen_range(limit_range.0..=limit_range.1),
            emergency: rng.gen_bool(0.2),
            task: rng.gen_range(0..cav::TASKS.len()),
        }
    }

    /// The oracle decision (uses the *true* weather).
    pub fn label(&self) -> bool {
        cav::oracle(self.to_cav_context(self.rain), cav::TASKS[self.task].0)
    }

    /// The symbolic context, given an inferred weather value.
    pub fn to_cav_context(&self, rain: bool) -> cav::CavContext {
        cav::CavContext {
            loa: self.loa,
            limit: self.limit,
            rain,
            emergency: self.emergency,
        }
    }

    /// The flat feature row for the end-to-end statistical model.
    fn flat_features(&self) -> Vec<Feature> {
        let mut f = self.sensors.features();
        f.push(Feature::Num(self.loa as f64));
        f.push(Feature::Num(self.limit as f64));
        f.push(Feature::cat(if self.emergency { "yes" } else { "no" }));
        f.push(Feature::cat(cav::TASKS[self.task].0));
        f
    }
}

/// The statistical atomic-concept detector: sensors → rain?.
#[derive(Debug)]
pub struct WeatherDetector {
    tree: DecisionTree,
}

impl WeatherDetector {
    /// Trains the detector on `n` labelled frames.
    pub fn train(n: usize, seed: u64) -> WeatherDetector {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dataset::new(
            vec!["visibility".into(), "wiper".into(), "reflectivity".into()],
            2,
        );
        for _ in 0..n {
            let rain = rng.gen_bool(0.5);
            d.push(
                SensorFrame::sample(rain, &mut rng).features(),
                usize::from(rain),
            );
        }
        WeatherDetector {
            tree: DecisionTree::fit(&d),
        }
    }

    /// Infers the atomic concept from a frame.
    pub fn detect(&self, frame: &SensorFrame) -> bool {
        self.tree.predict(&frame.features()) == 1
    }
}

/// The hybrid pipeline: a weather detector plus a learned symbolic GPM.
#[derive(Debug)]
pub struct HybridPolicy {
    detector: WeatherDetector,
    gpm: Asg,
}

impl HybridPolicy {
    /// Trains both stages: the detector on labelled frames, the GPM on
    /// CAV examples (whose weather facts come from the detector, as they
    /// would in deployment).
    ///
    /// # Panics
    ///
    /// Panics if the symbolic task is unlearnable (it is learnable by
    /// construction).
    pub fn train(n_frames: usize, n_examples: usize, seed: u64) -> HybridPolicy {
        HybridPolicy::train_with_regime(n_frames, n_examples, seed, (0, 5))
    }

    /// Like [`HybridPolicy::train`], with explicit training-time regional
    /// limit regime (for the §V-C policy-shift experiment).
    ///
    /// # Panics
    ///
    /// Panics if the symbolic task is unlearnable.
    pub fn train_with_regime(
        n_frames: usize,
        n_examples: usize,
        seed: u64,
        limit_range: (i64, i64),
    ) -> HybridPolicy {
        let detector = WeatherDetector::train(n_frames, seed);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
        let samples: Vec<cav::Sample> = (0..n_examples)
            .map(|_| {
                let raw = RawSituation::sample(&mut rng, limit_range);
                let inferred_rain = detector.detect(&raw.sensors);
                cav::Sample {
                    context: raw.to_cav_context(inferred_rain),
                    task: cav::TASKS[raw.task].0,
                    accept: raw.label(),
                }
            })
            .collect();
        let task = cav::learning_task(&samples, Some(5));
        let h = Learner::new()
            .learn(&task)
            .expect("hybrid task is learnable");
        HybridPolicy {
            detector,
            gpm: h.apply(&task.grammar),
        }
    }

    /// Decides a raw situation: detect the atomic concept, then ask the GPM.
    pub fn decide(&self, raw: &RawSituation) -> bool {
        let rain = self.detector.detect(&raw.sensors);
        let ctx = raw.to_cav_context(rain);
        self.gpm
            .with_context(&ctx.to_program())
            .accepts(&cav::policy_text(cav::TASKS[raw.task].0))
            .unwrap_or(false)
    }

    /// The symbolic layer (for inspection/explanation).
    pub fn gpm(&self) -> &Asg {
        &self.gpm
    }
}

/// Trains the end-to-end statistical comparator.
pub fn train_end_to_end(n: usize, seed: u64) -> DecisionTree {
    train_end_to_end_with_regime(n, seed, (0, 5))
}

/// Like [`train_end_to_end`], with explicit training-time limit regime.
pub fn train_end_to_end_with_regime(n: usize, seed: u64, limit_range: (i64, i64)) -> DecisionTree {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut d = Dataset::new(
        vec![
            "visibility".into(),
            "wiper".into(),
            "reflectivity".into(),
            "loa".into(),
            "limit".into(),
            "emergency".into(),
            "task".into(),
        ],
        2,
    );
    for _ in 0..n {
        let raw = RawSituation::sample(&mut rng, limit_range);
        d.push(raw.flat_features(), usize::from(raw.label()));
    }
    DecisionTree::fit(&d)
}

/// Accuracy of both pipelines over situations drawn with the given regional
/// limit regime.
pub fn compare(
    hybrid: &HybridPolicy,
    end_to_end: &DecisionTree,
    n: usize,
    seed: u64,
    limit_range: (i64, i64),
) -> (f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut hybrid_ok = 0;
    let mut e2e_ok = 0;
    for _ in 0..n {
        let raw = RawSituation::sample(&mut rng, limit_range);
        let label = raw.label();
        if hybrid.decide(&raw) == label {
            hybrid_ok += 1;
        }
        if (end_to_end.predict(&raw.flat_features()) == 1) == label {
            e2e_ok += 1;
        }
    }
    (hybrid_ok as f64 / n as f64, e2e_ok as f64 / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_learns_the_atomic_concept() {
        let det = WeatherDetector::train(200, 3);
        let mut rng = StdRng::seed_from_u64(99);
        let correct = (0..200)
            .filter(|_| {
                let rain = rng.gen_bool(0.5);
                det.detect(&SensorFrame::sample(rain, &mut rng)) == rain
            })
            .count();
        assert!(correct >= 190, "detector accuracy {correct}/200");
    }

    #[test]
    fn hybrid_pipeline_is_accurate() {
        let hybrid = HybridPolicy::train(200, 96, 7);
        let e2e = train_end_to_end(96, 7);
        let (h, s) = compare(&hybrid, &e2e, 300, 42, (0, 5));
        assert!(h > 0.9, "hybrid accuracy {h}");
        assert!(s > 0.6, "statistical accuracy {s}");
    }

    #[test]
    fn hybrid_survives_policy_regime_shift() {
        // Train under a permissive regime (limits mostly high), evaluate
        // under a restrictive one: the symbolic layer reads the limit from
        // context, the end-to-end tree under-weights a feature that rarely
        // mattered in training.
        let hybrid = HybridPolicy::train_with_regime(200, 200, 11, (2, 5));
        let e2e = train_end_to_end_with_regime(200, 11, (2, 5));
        let (h_shift, s_shift) = compare(&hybrid, &e2e, 300, 77, (0, 1));
        assert!(
            h_shift > s_shift + 0.03,
            "hybrid {h_shift} should beat end-to-end {s_shift} after the shift"
        );
        assert!(h_shift > 0.85, "hybrid accuracy after shift {h_shift}");
    }
}
