//! The XACML access-control case study (paper §IV-C, Fig. 3): learning
//! access-control policies from logs of requests and decisions.
//!
//! The paper's dataset (the AT&T XACML conformance suite) is an external
//! artifact, so this module generates request/response logs *from known
//! ground-truth policies* over the same attribute vocabulary — which lets
//! every experiment check learned policies against ground truth, exactly as
//! Fig. 3 labels policies "correctly"/"incorrectly learned".
//!
//! Modeling: the GPM's language contains the string `deny` under a request
//! context iff denial is the valid decision. Learned constraints on the
//! `deny` production are therefore *permit conditions*, and translate
//! one-to-one into XACML-style permit rules (Fig. 3a). The three failure
//! modes of Fig. 3b are reproduced by (1) sparse logs (overfitting to an
//! incidental attribute such as `age`), (2) an unrestricted hypothesis
//! space (under-specified subjects), and (3) `NotApplicable` responses
//! naively treated as decisions.

use agenp_asp::{Program, Rule, Term};
use agenp_grammar::{Asg, ProdId};
use agenp_learn::{
    Candidate, Example, HypothesisSpace, LearningTask, ModeArg, ModeAtom, ModeBias, ModeLiteral,
};
use agenp_policy::{Category, CombiningAlg, Cond, Decision, Effect, Policy, PolicyRule, Request};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Subject roles in the vocabulary.
pub const ROLES: [&str; 5] = ["admin", "dba", "developer", "intern", "postdoc"];
/// Resource types.
pub const RESOURCE_TYPES: [&str; 3] = ["public", "internal", "secret"];
/// Actions.
pub const ACTIONS: [&str; 3] = ["read", "write", "modify"];

/// A synthetic access request.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct XacmlRequest {
    /// Subject role (index into [`ROLES`]).
    pub role: usize,
    /// Subject age.
    pub age: i64,
    /// Resource type (index into [`RESOURCE_TYPES`]).
    pub rtype: usize,
    /// Action (index into [`ACTIONS`]).
    pub action: usize,
}

impl XacmlRequest {
    /// Samples a uniform request; ages cluster per role (each role has a
    /// small user population) so that sparse logs can exhibit the paper's
    /// age-overfitting failure mode.
    pub fn random(rng: &mut StdRng) -> XacmlRequest {
        let role = rng.gen_range(0..ROLES.len());
        // Each role's users are drawn from a narrow age band.
        let base = 25 + role as i64 * 5;
        XacmlRequest {
            role,
            age: base + rng.gen_range(0..3),
            rtype: rng.gen_range(0..RESOURCE_TYPES.len()),
            action: rng.gen_range(0..ACTIONS.len()),
        }
    }

    /// The ASP context facts for this request.
    pub fn context(&self) -> Program {
        format!(
            "role({}). age({}). rtype({}). action({}).",
            ROLES[self.role], self.age, RESOURCE_TYPES[self.rtype], ACTIONS[self.action],
        )
        .parse()
        .expect("request facts always parse")
    }

    /// The attribute-based request for the PDP.
    pub fn to_request(&self) -> Request {
        Request::new()
            .subject("role", ROLES[self.role])
            .subject("age", self.age)
            .resource("type", RESOURCE_TYPES[self.rtype])
            .action("action-id", ACTIONS[self.action])
    }
}

/// The ground-truth decision: Permit iff the subject is an admin, the
/// request is a public read, or a DBA touches an internal resource;
/// otherwise Deny.
pub fn oracle(r: &XacmlRequest) -> Decision {
    let role = ROLES[r.role];
    let rtype = RESOURCE_TYPES[r.rtype];
    let action = ACTIONS[r.action];
    let permit = role == "admin"
        || (rtype == "public" && action == "read")
        || (role == "dba" && rtype == "internal");
    if permit {
        Decision::Permit
    } else {
        Decision::Deny
    }
}

/// The ground-truth policy in enforceable form (for quality comparisons).
pub fn ground_truth_policy() -> Policy {
    Policy {
        id: "ground-truth".into(),
        rules: vec![
            PolicyRule::new(
                "admin",
                Effect::Permit,
                Cond::eq(Category::Subject, "role", "admin"),
            ),
            PolicyRule::new(
                "public-read",
                Effect::Permit,
                Cond::And(vec![
                    Cond::eq(Category::Resource, "type", "public"),
                    Cond::eq(Category::Action, "action-id", "read"),
                ]),
            ),
            PolicyRule::new(
                "dba-internal",
                Effect::Permit,
                Cond::And(vec![
                    Cond::eq(Category::Subject, "role", "dba"),
                    Cond::eq(Category::Resource, "type", "internal"),
                ]),
            ),
            PolicyRule::unconditional("default-deny", Effect::Deny),
        ],
        combining: CombiningAlg::PermitOverrides,
        obligations: Vec::new(),
    }
}

/// A logged response (the decision recorded in an audit log).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Response {
    /// Permit was recorded.
    Permit,
    /// Deny was recorded.
    Deny,
    /// An irrelevant/NotApplicable response (the "low quality" log entries
    /// of §IV-C).
    NotApplicable,
}

/// Generates a request/response log. Each entry records the oracle's
/// decision, except that with probability `p_na` the response is replaced
/// by `NotApplicable` (a noisy, irrelevant log entry).
pub fn generate_log(n: usize, seed: u64, p_na: f64) -> Vec<(XacmlRequest, Response)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let r = XacmlRequest::random(&mut rng);
            let response = if rng.gen_bool(p_na) {
                Response::NotApplicable
            } else {
                match oracle(&r) {
                    Decision::Permit => Response::Permit,
                    _ => Response::Deny,
                }
            };
            (r, response)
        })
        .collect()
}

/// The decision grammar: `permit` / `deny` as decision strings.
pub fn grammar() -> Asg {
    r#"
        decision -> "permit" { e(permit). }
        decision -> "deny"   { e(deny). }
    "#
    .parse()
    .expect("decision grammar is well-formed")
}

/// The production id of `decision -> "deny"`.
pub fn deny_production() -> ProdId {
    ProdId::from_index(1)
}

/// Hypothesis-space configuration knobs for the Fig. 3b experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpaceConfig {
    /// Include concrete `age(k)` literals (enables the overfitting mode of
    /// Fig. 3b-1 on sparse logs).
    pub include_age: bool,
    /// Target-based restriction (§IV-C): require every candidate to
    /// mention at least one subject attribute, preventing the
    /// under-specified-subject policies of Fig. 3b-2.
    pub require_subject_attribute: bool,
}

/// The hypothesis space: constraints on the `deny` production whose bodies
/// are conjunctions of request-attribute literals — i.e. candidate *permit
/// conditions*.
pub fn hypothesis_space(config: SpaceConfig) -> HypothesisSpace {
    let mut body = vec![
        ModeLiteral::positive(ModeAtom::local(
            "role",
            vec![ModeArg::Choice(
                ROLES.iter().map(|r| Term::sym(r)).collect(),
            )],
        )),
        ModeLiteral::positive(ModeAtom::local(
            "rtype",
            vec![ModeArg::Choice(
                RESOURCE_TYPES.iter().map(|r| Term::sym(r)).collect(),
            )],
        )),
        ModeLiteral::positive(ModeAtom::local(
            "action",
            vec![ModeArg::Choice(
                ACTIONS.iter().map(|a| Term::sym(a)).collect(),
            )],
        )),
    ];
    if config.include_age {
        body.push(ModeLiteral::positive(ModeAtom::local(
            "age",
            vec![ModeArg::Choice((25..40).map(Term::Int).collect())],
        )));
    }
    let space = ModeBias::constraints(vec![deny_production()], body)
        .max_body(2)
        .max_vars(0)
        .generate();
    if config.require_subject_attribute {
        HypothesisSpace::from_candidates(
            space
                .candidates()
                .iter()
                .filter(|c| {
                    c.rule.body.iter().any(|l| {
                        l.atom()
                            .is_some_and(|a| a.pred.with_name(|n| n == "role" || n == "age"))
                    })
                })
                .cloned()
                .collect::<Vec<Candidate>>(),
        )
    } else {
        space
    }
}

/// How NotApplicable log entries are handled when building the task.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NoiseHandling {
    /// Treat NotApplicable as Deny — the naive misinterpretation of
    /// Fig. 3b-3.
    Naive,
    /// Pre-filter irrelevant entries (the paper's proposed mitigation).
    Filter,
    /// Keep them but mark every example soft with the given penalty
    /// (ILASP-style noise tolerance).
    Penalty(u32),
}

/// Builds the learning task from a log. Permit responses become negative
/// `deny` examples; Deny responses become positive `deny` examples.
pub fn learning_task(
    log: &[(XacmlRequest, Response)],
    config: SpaceConfig,
    noise: NoiseHandling,
) -> LearningTask {
    let mut task = LearningTask::new(grammar(), hypothesis_space(config));
    for (req, response) in log {
        let mut example = Example::in_context("deny", req.context());
        if let NoiseHandling::Penalty(p) = noise {
            example = example.with_penalty(p);
        }
        match response {
            Response::Deny => task = task.pos(example),
            Response::Permit => task = task.neg(example),
            Response::NotApplicable => match noise {
                NoiseHandling::Naive => task = task.pos(example),
                NoiseHandling::Filter => {}
                NoiseHandling::Penalty(_) => {
                    // An irrelevant response is still noise; naively treat
                    // it as a (soft) deny so the penalty machinery can
                    // discard it.
                    task = task.pos(example);
                }
            },
        }
    }
    task
}

/// Translates a learned hypothesis (constraints on the `deny` production)
/// into XACML-style policy rules: each constraint body becomes a permit
/// condition, plus a default deny (the Fig. 3a presentation).
pub fn learned_policy(rules: &[(ProdId, Rule)]) -> Policy {
    let mut out = Vec::new();
    for (i, (target, rule)) in rules.iter().enumerate() {
        if *target != deny_production() || !rule.is_constraint() {
            continue;
        }
        let mut conds = Vec::new();
        for lit in &rule.body {
            let Some(atom) = lit.atom() else { continue };
            let value = match atom.args.first() {
                Some(Term::Sym(s)) => agenp_policy::AttrValue::Str(s.name()),
                Some(Term::Int(v)) => agenp_policy::AttrValue::Int(*v),
                _ => continue,
            };
            let (category, attr) = atom.pred.with_name(|n| match n {
                "role" => (Category::Subject, "role"),
                "age" => (Category::Subject, "age"),
                "rtype" => (Category::Resource, "type"),
                "action" => (Category::Action, "action-id"),
                other => panic!("unknown learned predicate {other}"),
            });
            conds.push(Cond::Cmp {
                category,
                attr: attr.to_owned(),
                op: agenp_policy::CondOp::Eq,
                value,
            });
        }
        let condition = if conds.len() == 1 {
            conds.pop().unwrap()
        } else {
            Cond::And(conds)
        };
        out.push(PolicyRule::new(
            &format!("learned-{i}"),
            Effect::Permit,
            condition,
        ));
    }
    out.push(PolicyRule::unconditional("default-deny", Effect::Deny));
    Policy {
        id: "learned".into(),
        rules: out,
        combining: CombiningAlg::PermitOverrides,
        obligations: Vec::new(),
    }
}

/// Accuracy of a policy against the oracle on `n` fresh requests.
pub fn policy_accuracy(policy: &Policy, n: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut correct = 0;
    for _ in 0..n {
        let r = XacmlRequest::random(&mut rng);
        if policy.evaluate(&r.to_request()) == oracle(&r) {
            correct += 1;
        }
    }
    correct as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use agenp_learn::Learner;

    #[test]
    fn oracle_and_ground_truth_policy_agree() {
        let mut rng = StdRng::seed_from_u64(0);
        let gt = ground_truth_policy();
        for _ in 0..200 {
            let r = XacmlRequest::random(&mut rng);
            assert_eq!(gt.evaluate(&r.to_request()), oracle(&r), "request {r:?}");
        }
    }

    #[test]
    fn learns_ground_truth_from_clean_log() {
        let log = generate_log(120, 7, 0.0);
        let task = learning_task(&log, SpaceConfig::default(), NoiseHandling::Filter);
        let h = Learner::new().learn(&task).expect("clean log is learnable");
        let policy = learned_policy(&h.rules);
        let acc = policy_accuracy(&policy, 400, 1234);
        assert!(acc > 0.97, "accuracy {acc}; hypothesis:\n{h}");
        // The learned permit conditions mirror Fig. 3a.
        let texts: Vec<String> = policy.rules.iter().map(|r| r.to_string()).collect();
        assert!(
            texts.iter().any(|t| t.contains("subject.role = admin")),
            "learned rules: {texts:?}"
        );
    }

    #[test]
    fn sparse_log_with_age_overfits_and_statistics_fix_it() {
        // Fig. 3b-1: a handful of examples in which the only permitted
        // non-admin subject is one DBA user (a single age). With age
        // literals available, a cheaper age-based policy explains the log.
        let dba_34 = XacmlRequest {
            role: 1,
            age: 30,
            rtype: 1,
            action: 0,
        };
        let intern = XacmlRequest {
            role: 3,
            age: 40,
            rtype: 2,
            action: 2,
        };
        let sparse: Vec<(XacmlRequest, Response)> =
            vec![(dba_34, Response::Permit), (intern, Response::Deny)];
        let config = SpaceConfig {
            include_age: true,
            require_subject_attribute: false,
        };
        let task = learning_task(&sparse, config, NoiseHandling::Filter);
        let h = Learner::new().learn(&task).unwrap();
        let over_specific = h
            .rules
            .iter()
            .any(|(_, r)| r.to_string().contains("age(30)"));
        // Minimal-cost tie-breaking can pick `age(30)` or another 1-literal
        // explanation; the point is that role+rtype (cost 2) is NOT chosen.
        assert!(h.rules.iter().all(|(_, r)| r.len() == 1), "{h}");
        let _ = over_specific;

        // Mitigation: richer statistics — more users per role, so single-
        // attribute explanations are contradicted.
        let log = generate_log(150, 21, 0.0);
        let task2 = learning_task(&log, config, NoiseHandling::Filter);
        let h2 = Learner::new().learn(&task2).unwrap();
        let policy = learned_policy(&h2.rules);
        assert!(policy_accuracy(&policy, 300, 5) > 0.97, "{h2}");
    }

    #[test]
    fn target_restriction_forces_explicit_subjects() {
        let restricted = hypothesis_space(SpaceConfig {
            include_age: false,
            require_subject_attribute: true,
        });
        assert!(restricted
            .candidates()
            .iter()
            .all(|c| c.rule.body.iter().any(|l| l
                .atom()
                .is_some_and(|a| a.pred.with_name(|n| n == "role" || n == "age")))));
        let unrestricted = hypothesis_space(SpaceConfig::default());
        assert!(restricted.len() < unrestricted.len());
    }

    #[test]
    fn naive_noise_handling_learns_wrong_policies_filter_fixes() {
        let log = generate_log(120, 13, 0.25);
        let naive = learning_task(&log, SpaceConfig::default(), NoiseHandling::Naive);
        // Naive treatment usually makes the task unsatisfiable or wrong.
        let naive_acc = match Learner::new().learn(&naive) {
            Ok(h) => policy_accuracy(&learned_policy(&h.rules), 300, 77),
            Err(_) => 0.0,
        };
        let filtered = learning_task(&log, SpaceConfig::default(), NoiseHandling::Filter);
        let h = Learner::new()
            .learn(&filtered)
            .expect("filtered log is learnable");
        let filtered_acc = policy_accuracy(&learned_policy(&h.rules), 300, 77);
        assert!(
            filtered_acc > naive_acc + 0.05,
            "filtered {filtered_acc} vs naive {naive_acc}"
        );
        assert!(filtered_acc > 0.95);
    }

    #[test]
    fn penalty_noise_handling_survives_noise() {
        let log = generate_log(100, 17, 0.15);
        let task = learning_task(&log, SpaceConfig::default(), NoiseHandling::Penalty(1));
        let h = Learner::new()
            .learn(&task)
            .expect("penalized task is learnable");
        let acc = policy_accuracy(&learned_policy(&h.rules), 300, 88);
        assert!(acc > 0.9, "accuracy {acc}");
    }
}
