//! A meta-encoding learner: the authentic ILASP approach of solving the
//! learning task *as an ASP optimization problem*. Candidate selection is
//! encoded with choice loops, example coverage with kill-set facts, and
//! hypothesis minimality plus example penalties with weak constraints; the
//! engine's branch-and-bound optimizer then returns the optimal hypothesis.
//!
//! Applicable to constraint-only hypothesis spaces with completely
//! enumerable worlds (the same precondition as the monotone fast path);
//! used to cross-validate the native branch-and-bound learner and as an
//! ablation backend.

use crate::compile::{compile_example, CompiledExample};
use crate::learner::{Hypothesis, LearnError, Learner, LearningTask};
use agenp_asp::{ground, Program, Solver};

impl Learner {
    /// Learns by compiling the task into a single ASP optimization program
    /// and solving it with the engine's branch-and-bound optimizer.
    ///
    /// # Errors
    ///
    /// [`LearnError::MetaInapplicable`] unless the space is constraint-only
    /// with completely enumerable worlds; [`LearnError::Unsatisfiable`] when
    /// no hypothesis covers the hard examples; [`LearnError::Budget`] if the
    /// ASP search exhausts its step budget.
    pub fn learn_meta(&self, task: &LearningTask) -> Result<Hypothesis, LearnError> {
        for c in task.space.candidates() {
            if let Some(v) = c.rule.unsafe_var() {
                return Err(LearnError::UnsafeCandidate(format!(
                    "{} ({v} unbound)",
                    c.rule
                )));
            }
            if c.target.index() >= task.grammar.cfg().production_count() {
                return Err(LearnError::BadTarget(c.target.index()));
            }
        }
        if !task.space.constraints_only() {
            return Err(LearnError::MetaInapplicable(
                "the meta encoding requires a constraint-only hypothesis space".to_owned(),
            ));
        }
        let mut compiled: Vec<CompiledExample> = Vec::new();
        for e in &task.positive {
            compiled.push(compile_example(
                &task.grammar,
                e,
                true,
                self.options().compile,
            )?);
        }
        for e in &task.negative {
            compiled.push(compile_example(
                &task.grammar,
                e,
                false,
                self.options().compile,
            )?);
        }
        if compiled
            .iter()
            .any(|e| e.trees.iter().any(|t| !t.worlds_complete))
        {
            return Err(LearnError::MetaInapplicable(
                "world enumeration hit its cap; the meta encoding would be unsound".to_owned(),
            ));
        }

        // --- Encode ---------------------------------------------------
        let candidates = task.space.candidates();
        let mut src = String::new();
        for (ci, _) in candidates.iter().enumerate() {
            src.push_str(&format!("cand({ci}).\n"));
        }
        src.push_str("sel(I) :- cand(I), not nsel(I).\n");
        src.push_str("nsel(I) :- cand(I), not sel(I).\n");
        // Kill facts + example/world structure.
        let mut world_id = 0usize;
        for (ei, ex) in compiled.iter().enumerate() {
            if ex.is_pos {
                src.push_str(&format!("posex({ei}).\n"));
            } else {
                src.push_str(&format!("negex({ei}).\n"));
            }
            for tree in &ex.trees {
                for world in &tree.worlds {
                    src.push_str(&format!("eworld({ei}, {world_id}).\n"));
                    for (ci, cand) in candidates.iter().enumerate() {
                        if tree.world_violates(world, cand) {
                            src.push_str(&format!("kills({ci}, {world_id}).\n"));
                        }
                    }
                    world_id += 1;
                }
            }
        }
        src.push_str("wdead(W) :- kills(C, W), sel(C).\n");
        // A positive example survives if one of its worlds survives; a
        // negative example is violated likewise.
        src.push_str("alive(E) :- eworld(E, W), not wdead(W).\n");
        src.push_str("pviol(E) :- posex(E), not alive(E).\n");
        src.push_str("nviol(E) :- negex(E), alive(E).\n");
        for (ei, ex) in compiled.iter().enumerate() {
            let viol = if ex.is_pos { "pviol" } else { "nviol" };
            match ex.penalty {
                None => src.push_str(&format!(":- {viol}({ei}).\n")),
                Some(p) => src.push_str(&format!(":~ {viol}({ei}). [{p}]\n")),
            }
        }
        // Minimality: each selected rule costs its length.
        for (ci, cand) in candidates.iter().enumerate() {
            src.push_str(&format!(":~ sel({ci}). [{}]\n", cand.cost));
        }

        // --- Solve ------------------------------------------------------
        let program: Program = src.parse().expect("meta encoding is well-formed");
        let grounded = ground(&program)?;
        let result = Solver::new()
            .max_steps(self.options().max_nodes)
            .optimize(&grounded);
        let Some(best) = result.optima().first() else {
            return Err(LearnError::Unsatisfiable);
        };
        if !result.proven_optimal() {
            return Err(LearnError::Budget);
        }

        // --- Decode -----------------------------------------------------
        let mut rules = Vec::new();
        let mut rule_cost: u64 = 0;
        for (ci, cand) in candidates.iter().enumerate() {
            let atom: agenp_asp::Atom = format!("sel({ci})").parse().expect("sel atom parses");
            if best.contains(&atom) {
                rules.push((cand.target, cand.rule.clone()));
                rule_cost += u64::from(cand.cost);
            }
        }
        let mut sacrificed = Vec::new();
        let mut penalty_cost: u64 = 0;
        for (ei, ex) in compiled.iter().enumerate() {
            let viol = if ex.is_pos { "pviol" } else { "nviol" };
            let atom: agenp_asp::Atom = format!("{viol}({ei})").parse().expect("viol atom parses");
            if best.contains(&atom) {
                sacrificed.push((ex.is_pos, local_index(&compiled, ei)));
                penalty_cost += u64::from(ex.penalty.unwrap_or(0));
            }
        }
        Ok(Hypothesis {
            rules,
            cost: rule_cost + penalty_cost,
            sacrificed,
        })
    }
}

fn local_index(compiled: &[CompiledExample], ei: usize) -> usize {
    if compiled[ei].is_pos {
        ei
    } else {
        ei - compiled.iter().filter(|e| e.is_pos).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::Example;
    use crate::space::HypothesisSpace;
    use agenp_grammar::{Asg, ProdId};

    fn pid(i: usize) -> ProdId {
        ProdId::from_index(i)
    }

    fn weather_task() -> LearningTask {
        let g: Asg = r#"
            policy -> "allow" { act(allow). }
            policy -> "deny"  { act(deny). }
        "#
        .parse()
        .unwrap();
        let space = HypothesisSpace::from_texts(&[
            (pid(0), ":- weather(rain)."),
            (pid(0), ":- weather(clear)."),
            (pid(1), ":- weather(rain)."),
            (pid(1), ":- weather(clear)."),
        ]);
        LearningTask::new(g, space)
            .pos(Example::in_context(
                "allow",
                "weather(clear).".parse().unwrap(),
            ))
            .pos(Example::in_context(
                "deny",
                "weather(rain).".parse().unwrap(),
            ))
            .neg(Example::in_context(
                "allow",
                "weather(rain).".parse().unwrap(),
            ))
            .neg(Example::in_context(
                "deny",
                "weather(clear).".parse().unwrap(),
            ))
    }

    #[test]
    fn meta_matches_native_learner() {
        let task = weather_task();
        let native = Learner::new().learn(&task).unwrap();
        let meta = Learner::new().learn_meta(&task).unwrap();
        assert_eq!(native.cost, meta.cost);
        assert!(task.violations(&meta).unwrap().is_empty());
        assert_eq!(meta.rules.len(), 2);
    }

    #[test]
    fn meta_handles_penalties() {
        let g: Asg = "policy -> \"allow\" { act(allow). }".parse().unwrap();
        let space = HypothesisSpace::from_texts(&[(pid(0), ":- storm.")]);
        let task = LearningTask::new(g, space)
            .pos(Example::in_context("allow", "storm.".parse().unwrap()).with_penalty(1))
            .neg(Example::in_context("allow", "storm.".parse().unwrap()));
        let meta = Learner::new().learn_meta(&task).unwrap();
        // Sacrificing the soft positive (1) is as cheap as any rule; the
        // hard negative forces the constraint.
        assert_eq!(meta.cost, 2);
        assert_eq!(meta.sacrificed, vec![(true, 0)]);
    }

    #[test]
    fn meta_reports_unsat() {
        let g: Asg = "policy -> \"allow\"".parse().unwrap();
        let task = LearningTask::new(g, HypothesisSpace::from_texts(&[(pid(0), ":- x.")]))
            .pos(Example::in_context("allow", "x.".parse().unwrap()))
            .neg(Example::in_context("allow", "x.".parse().unwrap()));
        match Learner::new().learn_meta(&task) {
            Err(LearnError::Unsatisfiable) => {}
            other => panic!("expected Unsatisfiable, got {other:?}"),
        }
    }

    #[test]
    fn meta_rejects_normal_rule_spaces() {
        let g: Asg = "policy -> \"allow\" { :- not ok. }".parse().unwrap();
        let task = LearningTask::new(g, HypothesisSpace::from_texts(&[(pid(0), "ok :- sunny.")]))
            .pos(Example::in_context("allow", "sunny.".parse().unwrap()));
        match Learner::new().learn_meta(&task) {
            Err(LearnError::MetaInapplicable(_)) => {}
            other => panic!("expected MetaInapplicable, got {other:?}"),
        }
    }
}
