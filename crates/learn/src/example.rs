//! Context-dependent examples `⟨s, C⟩` (paper Definition 3): a policy string
//! plus the ASP context program under which it is (positive) or is not
//! (negative) a valid policy.

use agenp_asp::Program;
use std::fmt;

/// A context-dependent example.
#[derive(Clone, Debug)]
pub struct Example {
    /// The policy string `s` (whitespace-tokenized).
    pub text: String,
    /// The context program `C`.
    pub context: Program,
    /// `None` — a hard example that any solution must respect;
    /// `Some(k)` — a noise-tolerant example the learner may violate at
    /// cost `k` (ILASP-style penalties, supporting the paper's noisy-dataset
    /// discussion in §IV-C).
    pub penalty: Option<u32>,
}

impl Example {
    /// A hard example with an empty context.
    pub fn new(text: impl Into<String>) -> Example {
        Example {
            text: text.into(),
            context: Program::new(),
            penalty: None,
        }
    }

    /// A hard example with a context program.
    pub fn in_context(text: impl Into<String>, context: Program) -> Example {
        Example {
            text: text.into(),
            context,
            penalty: None,
        }
    }

    /// Attaches a violation penalty, making the example soft.
    pub fn with_penalty(mut self, penalty: u32) -> Example {
        self.penalty = Some(penalty);
        self
    }

    /// True if the learner may violate this example (at a cost).
    pub fn is_soft(&self) -> bool {
        self.penalty.is_some()
    }
}

impl fmt::Display for Example {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{:?}, {} ctx rules", self.text, self.context.len())?;
        if let Some(p) = self.penalty {
            write!(f, ", penalty {p}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let e = Example::new("allow task");
        assert!(e.context.is_empty());
        assert!(!e.is_soft());
        let ctx: Program = "weather(rain).".parse().unwrap();
        let e2 = Example::in_context("deny task", ctx).with_penalty(5);
        assert_eq!(e2.penalty, Some(5));
        assert!(e2.is_soft());
        assert!(e2.to_string().contains("penalty 5"));
    }
}
