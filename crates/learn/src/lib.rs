//! # agenp-learn — inductive learning of answer set grammars
//!
//! An ILASP-style learner for the *context-dependent ASG learning task* of
//! the AGENP paper (Definition 3): given an initial answer set grammar `G`,
//! a hypothesis space `S_M` of candidate ASP rules (each tagged with the
//! production it may annotate), and positive/negative examples `⟨s, C⟩` of
//! policy strings under contexts, find a minimal-cost hypothesis `H ⊆ S_M`
//! with `s ∈ L(G(C):H)` for every positive and `s ∉ L(G(C):H)` for every
//! negative example.
//!
//! Highlights:
//!
//! * a **monotone fast path** for constraint-only hypothesis spaces
//!   (answer-set "worlds" + branch-and-bound hitting sets),
//! * a **generic path** for spaces containing normal rules,
//! * an **ASP meta-encoding backend** ([`Learner::learn_meta`]) solving the
//!   task with the engine's weak-constraint optimizer — the authentic
//!   ILASP architecture, used for cross-validation and ablations,
//! * ILASP-style **noise handling** via per-example penalties,
//! * an **incremental** (relevant-example, ILASP2i-style) driver,
//! * hypothesis-space generation from **mode biases**.
//!
//! ```
//! use agenp_grammar::Asg;
//! use agenp_learn::{Example, HypothesisSpace, Learner, LearningTask};
//! use agenp_grammar::ProdId;
//!
//! let g: Asg = r#"
//!     policy -> "allow" { act(allow). }
//!     policy -> "deny"  { act(deny). }
//! "#.parse()?;
//! let space = HypothesisSpace::from_texts(&[
//!     (ProdId::from_index(0), ":- alert."),
//!     (ProdId::from_index(1), ":- not alert."),
//! ]);
//! let alert: agenp_asp::Program = "alert.".parse()?;
//! let task = LearningTask::new(g, space)
//!     .pos(Example::in_context("deny", alert.clone()))
//!     .neg(Example::in_context("allow", alert));
//! let h = Learner::new().learn(&task)?;
//! assert_eq!(h.rules.len(), 1); // learns `:- alert.` on the allow production
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod compile;
mod example;
mod incremental;
mod learner;
mod meta;
pub mod obs;
mod space;

pub use compile::{
    body_holds, compile_example, CompileOptions, CompiledExample, CompiledTree, World,
};
pub use example::Example;
pub use incremental::IncrementalStats;
pub use learner::{
    Branching, Hypothesis, LearnError, LearnOptions, LearnStats, Learner, LearningTask,
};
pub use space::{Candidate, HypothesisSpace, ModeArg, ModeAtom, ModeBias, ModeCmp, ModeLiteral};
