//! Hypothesis spaces `S_M` (paper Definition 3): sets of candidate ASP rules,
//! each tagged with the production rule it may be added to, generated from a
//! mode bias or supplied explicitly.

use agenp_asp::{Atom, CmpOp, Literal, Rule, Symbol, Term};
use agenp_grammar::ProdId;
use std::collections::HashSet;
use std::fmt;

/// One learnable rule: the rule plus the identifier of the production whose
/// annotation it extends.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Candidate {
    /// The rule that may be added.
    pub rule: Rule,
    /// Target production (Definition 3's `pr_id`).
    pub target: ProdId,
    /// ILASP-style cost: the number of literals in the rule.
    pub cost: u32,
}

impl Candidate {
    /// Builds a candidate, deriving its cost from the rule length.
    pub fn new(target: ProdId, rule: Rule) -> Candidate {
        let cost = rule.len().max(1) as u32;
        Candidate { rule, target, cost }
    }
}

impl fmt::Display for Candidate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{} ⊕ {}", self.target.index(), self.rule)
    }
}

/// An ASG hypothesis space: an ordered set of [`Candidate`] rules.
#[derive(Clone, Debug, Default)]
pub struct HypothesisSpace {
    candidates: Vec<Candidate>,
}

impl HypothesisSpace {
    /// An empty space.
    pub fn new() -> HypothesisSpace {
        HypothesisSpace::default()
    }

    /// Builds a space from explicit candidates (deduplicated).
    pub fn from_candidates(candidates: impl IntoIterator<Item = Candidate>) -> HypothesisSpace {
        let mut seen: HashSet<(usize, String)> = HashSet::new();
        let mut out = Vec::new();
        for c in candidates {
            if seen.insert((c.target.index(), c.rule.to_string())) {
                out.push(c);
            }
        }
        HypothesisSpace { candidates: out }
    }

    /// Convenience: parses each `(production, rule_text)` pair.
    ///
    /// # Panics
    ///
    /// Panics if a rule fails to parse; intended for statically known spaces.
    pub fn from_texts(pairs: &[(ProdId, &str)]) -> HypothesisSpace {
        HypothesisSpace::from_candidates(pairs.iter().map(|(p, s)| {
            Candidate::new(
                *p,
                s.parse().unwrap_or_else(|e| panic!("bad rule `{s}`: {e}")),
            )
        }))
    }

    /// The candidates, in order.
    pub fn candidates(&self) -> &[Candidate] {
        &self.candidates
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// True if every candidate is a constraint (enables the monotone
    /// fast-path learner).
    pub fn constraints_only(&self) -> bool {
        self.candidates.iter().all(|c| c.rule.is_constraint())
    }

    /// Appends another space's candidates (deduplicated).
    pub fn merge(&mut self, other: HypothesisSpace) {
        let mut seen: HashSet<(usize, String)> = self
            .candidates
            .iter()
            .map(|c| (c.target.index(), c.rule.to_string()))
            .collect();
        for c in other.candidates {
            if seen.insert((c.target.index(), c.rule.to_string())) {
                self.candidates.push(c);
            }
        }
    }
}

impl FromIterator<Candidate> for HypothesisSpace {
    fn from_iter<I: IntoIterator<Item = Candidate>>(iter: I) -> HypothesisSpace {
        HypothesisSpace::from_candidates(iter)
    }
}

/// An argument slot in a mode declaration.
#[derive(Clone, Debug)]
pub enum ModeArg {
    /// Filled by a variable.
    Var,
    /// Filled by one of the listed ground terms.
    Choice(Vec<Term>),
}

/// A mode atom: predicate, argument modes, and the allowed annotations
/// (`None` = the node's own trace, `Some(i)` = child `i`).
#[derive(Clone, Debug)]
pub struct ModeAtom {
    /// Predicate name.
    pub pred: String,
    /// Argument slots.
    pub args: Vec<ModeArg>,
    /// Allowed annotations.
    pub annotations: Vec<Option<u16>>,
}

impl ModeAtom {
    /// A local (unannotated) mode atom.
    pub fn local(pred: &str, args: Vec<ModeArg>) -> ModeAtom {
        ModeAtom {
            pred: pred.to_owned(),
            args,
            annotations: vec![None],
        }
    }

    /// A mode atom annotated with one of the given child indices.
    pub fn children(pred: &str, args: Vec<ModeArg>, children: Vec<u16>) -> ModeAtom {
        ModeAtom {
            pred: pred.to_owned(),
            args,
            annotations: children.into_iter().map(Some).collect(),
        }
    }
}

/// A body mode: a [`ModeAtom`] plus allowed polarities.
#[derive(Clone, Debug)]
pub struct ModeLiteral {
    /// The atom shape.
    pub atom: ModeAtom,
    /// Allow the positive literal.
    pub positive: bool,
    /// Allow the negated (`not`) literal.
    pub negative: bool,
}

impl ModeLiteral {
    /// Allows both polarities.
    pub fn both(atom: ModeAtom) -> ModeLiteral {
        ModeLiteral {
            atom,
            positive: true,
            negative: true,
        }
    }

    /// Allows only the positive literal.
    pub fn positive(atom: ModeAtom) -> ModeLiteral {
        ModeLiteral {
            atom,
            positive: true,
            negative: false,
        }
    }
}

/// A comparison mode: generate `V ⊙ k` body literals over the given
/// constants.
#[derive(Clone, Debug)]
pub struct ModeCmp {
    /// Allowed operators.
    pub ops: Vec<CmpOp>,
    /// Right-hand-side constants.
    pub constants: Vec<Term>,
}

/// A mode bias: the declarative specification of a hypothesis space
/// (ILASP-style), targeted at a set of production rules.
#[derive(Clone, Debug)]
pub struct ModeBias {
    /// Productions that generated rules may be added to.
    pub targets: Vec<ProdId>,
    /// Allowed rule heads (empty ⇒ only constraints are generated).
    pub heads: Vec<ModeAtom>,
    /// Allowed body literals.
    pub body: Vec<ModeLiteral>,
    /// Comparison literals to append (each adds at most one per rule).
    pub comparisons: Vec<ModeCmp>,
    /// Variable-variable comparison operators to append (each adds at most
    /// one `Vi ⊙ Vj` literal per rule).
    pub var_comparisons: Vec<CmpOp>,
    /// Maximum number of body literals (excluding the comparison).
    pub max_body: usize,
    /// Maximum number of distinct variables per rule.
    pub max_vars: usize,
    /// Also generate headless constraints.
    pub allow_constraints: bool,
    /// Hard cap on the number of candidates generated.
    pub max_candidates: usize,
}

impl ModeBias {
    /// A constraint-only bias over the given productions.
    pub fn constraints(targets: Vec<ProdId>, body: Vec<ModeLiteral>) -> ModeBias {
        ModeBias {
            targets,
            heads: Vec::new(),
            body,
            comparisons: Vec::new(),
            var_comparisons: Vec::new(),
            max_body: 2,
            max_vars: 2,
            allow_constraints: true,
            max_candidates: 20_000,
        }
    }

    /// Sets the body-length bound.
    pub fn max_body(mut self, n: usize) -> ModeBias {
        self.max_body = n;
        self
    }

    /// Sets the variable bound.
    pub fn max_vars(mut self, n: usize) -> ModeBias {
        self.max_vars = n;
        self
    }

    /// Adds comparison modes.
    pub fn with_comparisons(mut self, cmps: Vec<ModeCmp>) -> ModeBias {
        self.comparisons = cmps;
        self
    }

    /// Adds variable-variable comparison operators.
    pub fn with_var_comparisons(mut self, ops: Vec<CmpOp>) -> ModeBias {
        self.var_comparisons = ops;
        self
    }

    /// Generates the hypothesis space.
    ///
    /// Variables are canonicalized (first occurrence order `V1, V2, …`) so
    /// that alphabetic variants of the same rule are generated once. Unsafe
    /// rules (a variable not bound by a positive body literal) are skipped.
    pub fn generate(&self) -> HypothesisSpace {
        // 1. Instantiate every literal template: polarity × annotation ×
        //    argument fillers. Variables are numbered placeholders 0..max_vars.
        #[derive(Clone)]
        struct LitTemplate {
            literal: Literal,
        }
        let mut templates: Vec<LitTemplate> = Vec::new();
        let var_names: Vec<Symbol> = (1..=self.max_vars)
            .map(|i| Symbol::new(&format!("V{i}")))
            .collect();

        let arg_fills = |atom: &ModeAtom| -> Vec<Vec<Term>> {
            let mut combos: Vec<Vec<Term>> = vec![Vec::new()];
            for arg in &atom.args {
                let choices: Vec<Term> = match arg {
                    ModeArg::Var => var_names.iter().map(|v| Term::Var(*v)).collect(),
                    ModeArg::Choice(ts) => ts.clone(),
                };
                let mut next = Vec::new();
                for c in &combos {
                    for t in &choices {
                        let mut nc = c.clone();
                        nc.push(t.clone());
                        next.push(nc);
                    }
                }
                combos = next;
            }
            combos
        };

        for ml in &self.body {
            for ann in &ml.atom.annotations {
                for args in arg_fills(&ml.atom) {
                    let mut atom = Atom::new(Symbol::new(&ml.atom.pred), args);
                    if let Some(i) = ann {
                        atom = atom.with_trace(agenp_asp::Trace::from_indices([*i]));
                    }
                    if ml.positive {
                        templates.push(LitTemplate {
                            literal: Literal::Pos(atom.clone()),
                        });
                    }
                    if ml.negative {
                        templates.push(LitTemplate {
                            literal: Literal::Neg(atom),
                        });
                    }
                }
            }
        }

        // Comparison literals: V ⊙ k for each variable.
        let mut cmp_templates: Vec<Literal> = Vec::new();
        for mc in &self.comparisons {
            for op in &mc.ops {
                for k in &mc.constants {
                    for v in &var_names {
                        cmp_templates.push(Literal::Cmp(*op, Term::Var(*v), k.clone()));
                    }
                }
            }
        }
        // Variable-variable comparisons: Vi ⊙ Vj. Symmetric operators only
        // need unordered pairs; asymmetric ones need both orders.
        for op in &self.var_comparisons {
            let symmetric = matches!(op, CmpOp::Eq | CmpOp::Ne);
            for (i, vi) in var_names.iter().enumerate() {
                for (j, vj) in var_names.iter().enumerate() {
                    if i == j || (symmetric && i > j) {
                        continue;
                    }
                    cmp_templates.push(Literal::Cmp(*op, Term::Var(*vi), Term::Var(*vj)));
                }
            }
        }

        // Head templates.
        let mut head_templates: Vec<Option<Atom>> = Vec::new();
        if self.allow_constraints {
            head_templates.push(None);
        }
        for h in &self.heads {
            for ann in &h.annotations {
                for args in arg_fills(h) {
                    let mut atom = Atom::new(Symbol::new(&h.pred), args);
                    if let Some(i) = ann {
                        atom = atom.with_trace(agenp_asp::Trace::from_indices([*i]));
                    }
                    head_templates.push(Some(atom));
                }
            }
        }

        // 2. Enumerate bodies: ordered index combinations (i1 < i2 < …) of
        //    distinct templates, sizes 1..=max_body, optionally plus one
        //    comparison.
        let mut rules: Vec<Rule> = Vec::new();
        let mut combo = Vec::new();
        fn bodies(
            templates: &[Literal],
            cmps: &[Literal],
            start: usize,
            combo: &mut Vec<Literal>,
            max_body: usize,
            out: &mut dyn FnMut(&[Literal]),
        ) {
            if !combo.is_empty() {
                out(combo);
                for c in cmps {
                    combo.push(c.clone());
                    out(combo);
                    combo.pop();
                }
            }
            if combo.len() >= max_body {
                return;
            }
            for i in start..templates.len() {
                combo.push(templates[i].clone());
                bodies(templates, cmps, i + 1, combo, max_body, out);
                combo.pop();
            }
        }
        let lits: Vec<Literal> = templates.iter().map(|t| t.literal.clone()).collect();
        {
            let mut emit = |body: &[Literal]| {
                for head in &head_templates {
                    rules.push(Rule {
                        head: head.clone(),
                        body: body.to_vec(),
                    });
                }
            };
            bodies(
                &lits,
                &cmp_templates,
                0,
                &mut combo,
                self.max_body,
                &mut emit,
            );
        }
        // Headed rules with empty bodies (facts) are also meaningful for
        // normal-rule heads.
        for head in head_templates.iter().flatten() {
            if head.is_ground() {
                rules.push(Rule {
                    head: Some(head.clone()),
                    body: Vec::new(),
                });
            }
        }

        // 3. Canonicalize variables, check safety, dedupe, cap.
        let mut seen: HashSet<String> = HashSet::new();
        let mut out: Vec<Rule> = Vec::new();
        for rule in rules {
            let canon = canonicalize_vars(&rule, &var_names);
            if canon.unsafe_var().is_some() {
                continue;
            }
            let key = canon.to_string();
            if seen.insert(key) {
                out.push(canon);
                if out.len() * self.targets.len() >= self.max_candidates {
                    break;
                }
            }
        }
        out.sort_by_key(|r| r.len());

        HypothesisSpace::from_candidates(
            self.targets
                .iter()
                .flat_map(|t| out.iter().map(move |r| Candidate::new(*t, r.clone()))),
        )
    }
}

/// Renames variables to `V1, V2, …` in order of first occurrence.
fn canonicalize_vars(rule: &Rule, pool: &[Symbol]) -> Rule {
    let mut mapping: Vec<(Symbol, Symbol)> = Vec::new();
    let mut order = Vec::new();
    if let Some(h) = &rule.head {
        h.collect_vars(&mut order);
    }
    // Variables are renamed in body-first order so that safety is stable.
    let mut body_order = Vec::new();
    for l in &rule.body {
        l.collect_vars(&mut body_order);
    }
    let mut all = body_order;
    for v in order {
        if !all.contains(&v) {
            all.push(v);
        }
    }
    for (i, v) in all.iter().enumerate() {
        let fresh = pool
            .get(i)
            .copied()
            .unwrap_or_else(|| Symbol::new(&format!("V{}", i + 1)));
        mapping.push((*v, fresh));
    }
    let rename = |t: &Term| -> Term { rename_term(t, &mapping) };
    let rename_atom = |a: &Atom| -> Atom {
        Atom {
            pred: a.pred,
            args: a.args.iter().map(rename).collect(),
            trace: a.trace.clone(),
        }
    };
    Rule {
        head: rule.head.as_ref().map(rename_atom),
        body: rule
            .body
            .iter()
            .map(|l| match l {
                Literal::Pos(a) => Literal::Pos(rename_atom(a)),
                Literal::Neg(a) => Literal::Neg(rename_atom(a)),
                Literal::Cmp(op, x, y) => Literal::Cmp(*op, rename(x), rename(y)),
            })
            .collect(),
    }
}

fn rename_term(t: &Term, mapping: &[(Symbol, Symbol)]) -> Term {
    match t {
        Term::Var(v) => {
            let new = mapping
                .iter()
                .find(|(old, _)| old == v)
                .map(|(_, n)| *n)
                .unwrap_or(*v);
            Term::Var(new)
        }
        Term::Func(f, args) => {
            Term::Func(*f, args.iter().map(|a| rename_term(a, mapping)).collect())
        }
        Term::Arith(op, l, r) => Term::Arith(
            *op,
            Box::new(rename_term(l, mapping)),
            Box::new(rename_term(r, mapping)),
        ),
        _ => t.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: usize) -> ProdId {
        ProdId::from_index(i)
    }

    #[test]
    fn explicit_space_dedupes() {
        let s = HypothesisSpace::from_texts(&[
            (pid(0), ":- bad."),
            (pid(0), ":- bad."),
            (pid(1), ":- bad."),
        ]);
        assert_eq!(s.len(), 2);
        assert!(s.constraints_only());
    }

    #[test]
    fn merge_dedupes() {
        let mut a = HypothesisSpace::from_texts(&[(pid(0), ":- x.")]);
        let b = HypothesisSpace::from_texts(&[(pid(0), ":- x."), (pid(0), ":- y.")]);
        a.merge(b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn mode_bias_generates_constraints() {
        let bias = ModeBias::constraints(
            vec![pid(0)],
            vec![
                ModeLiteral::both(ModeAtom::local(
                    "weather",
                    vec![ModeArg::Choice(vec![Term::sym("rain"), Term::sym("clear")])],
                )),
                ModeLiteral::positive(ModeAtom::local("risky", vec![])),
            ],
        )
        .max_body(2);
        let space = bias.generate();
        assert!(space.constraints_only());
        let texts: Vec<String> = space
            .candidates()
            .iter()
            .map(|c| c.rule.to_string())
            .collect();
        assert!(texts.contains(&":- weather(rain).".to_owned()), "{texts:?}");
        assert!(texts.contains(&":- not weather(clear).".to_owned()));
        assert!(
            texts.contains(&":- risky, weather(rain).".to_owned())
                || texts.contains(&":- weather(rain), risky.".to_owned())
        );
        // No unsafe variable constraints, no duplicates.
        let unique: HashSet<&String> = texts.iter().collect();
        assert_eq!(unique.len(), texts.len());
    }

    #[test]
    fn mode_bias_canonicalizes_variables() {
        let bias = ModeBias::constraints(
            vec![pid(0)],
            vec![ModeLiteral::positive(ModeAtom::local(
                "p",
                vec![ModeArg::Var],
            ))],
        )
        .max_vars(3)
        .max_body(1);
        let space = bias.generate();
        // p(V1), p(V2), p(V3) all canonicalize to p(V1): exactly one rule.
        assert_eq!(space.len(), 1);
        assert_eq!(space.candidates()[0].rule.to_string(), ":- p(V1).");
    }

    #[test]
    fn mode_bias_generates_annotated_literals() {
        let bias = ModeBias::constraints(
            vec![pid(0)],
            vec![ModeLiteral::positive(ModeAtom::children(
                "size",
                vec![ModeArg::Var],
                vec![1, 2],
            ))],
        )
        .max_body(2);
        let space = bias.generate();
        let texts: Vec<String> = space
            .candidates()
            .iter()
            .map(|c| c.rule.to_string())
            .collect();
        assert!(texts.contains(&":- size(V1)@1.".to_owned()));
        assert!(texts.iter().any(|t| t.contains("@1") && t.contains("@2")));
    }

    #[test]
    fn mode_bias_comparisons_attach_to_bound_vars() {
        let bias = ModeBias::constraints(
            vec![pid(0)],
            vec![ModeLiteral::positive(ModeAtom::local(
                "loa",
                vec![ModeArg::Var],
            ))],
        )
        .max_vars(1)
        .max_body(1)
        .with_comparisons(vec![ModeCmp {
            ops: vec![CmpOp::Lt, CmpOp::Ge],
            constants: vec![Term::Int(3)],
        }]);
        let space = bias.generate();
        let texts: Vec<String> = space
            .candidates()
            .iter()
            .map(|c| c.rule.to_string())
            .collect();
        assert!(
            texts.contains(&":- loa(V1), V1 < 3.".to_owned()),
            "{texts:?}"
        );
        assert!(texts.contains(&":- loa(V1), V1 >= 3.".to_owned()));
        // Bare `:- V1 < 3.` is unsafe and must be absent.
        assert!(!texts.iter().any(|t| t.starts_with(":- V1")));
    }

    #[test]
    fn candidate_costs_follow_length() {
        let s = HypothesisSpace::from_texts(&[(pid(0), ":- a."), (pid(0), ":- a, b.")]);
        assert_eq!(s.candidates()[0].cost, 1);
        assert_eq!(s.candidates()[1].cost, 2);
    }

    #[test]
    fn max_candidates_caps_generation() {
        let bias = ModeBias {
            max_candidates: 5,
            ..ModeBias::constraints(
                vec![pid(0)],
                vec![ModeLiteral::both(ModeAtom::local(
                    "attr",
                    vec![ModeArg::Choice((0..10).map(Term::Int).collect())],
                ))],
            )
        };
        let space = bias.generate();
        assert!(space.len() <= 5);
    }
}
