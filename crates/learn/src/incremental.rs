//! Incremental (relevant-example) learning, in the style of ILASP2i: solve
//! the task on a growing subset of *relevant* examples, adding a
//! counterexample each round, until the hypothesis covers everything. For
//! large example sets this avoids recompiling and re-searching against
//! examples the current hypothesis already explains.

use crate::compile::{compile_example, CompiledExample};
use crate::example::Example;
use crate::learner::{Hypothesis, LearnError, Learner, LearningTask};

/// Statistics from an incremental run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Number of solve rounds.
    pub rounds: u32,
    /// Relevant examples at termination.
    pub relevant: u32,
    /// Total examples in the task.
    pub total: u32,
}

impl Learner {
    /// Learns by iteratively growing a relevant-example subset.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Learner::learn`].
    pub fn learn_incremental(
        &self,
        task: &LearningTask,
    ) -> Result<(Hypothesis, IncrementalStats), LearnError> {
        let total = (task.positive.len() + task.negative.len()) as u32;
        // Compile every example once; counterexample checks then run on the
        // precomputed worlds instead of full answer-set semantics (falling
        // back to the latter for non-constraint hypotheses).
        let mut compiled_pos: Vec<CompiledExample> = Vec::new();
        for e in &task.positive {
            compiled_pos.push(compile_example(
                &task.grammar,
                e,
                true,
                self.options().compile,
            )?);
        }
        let mut compiled_neg: Vec<CompiledExample> = Vec::new();
        for e in &task.negative {
            compiled_neg.push(compile_example(
                &task.grammar,
                e,
                false,
                self.options().compile,
            )?);
        }
        // Indices into (is_pos, idx) space.
        let mut relevant_pos: Vec<usize> = Vec::new();
        let mut relevant_neg: Vec<usize> = Vec::new();
        let mut stats = IncrementalStats {
            rounds: 0,
            relevant: 0,
            total,
        };
        loop {
            stats.rounds += 1;
            let sub = LearningTask {
                grammar: task.grammar.clone(),
                space: task.space.clone(),
                positive: pick(&task.positive, &relevant_pos),
                negative: pick(&task.negative, &relevant_neg),
            };
            let hypothesis = self.learn(&sub)?;
            // Find counterexamples among all examples, preferring hard ones.
            // Three tiers: precomputed worlds (constraint-only hypotheses),
            // then delta grounding over the compiled bases, and only in the
            // naive-ground ablation full ASG re-parsing.
            let violated = match fast_violations(&compiled_pos, &compiled_neg, &hypothesis) {
                Some(v) => v,
                None => match grounded_violations(&compiled_pos, &compiled_neg, &hypothesis)? {
                    Some(v) => v,
                    None => task.violations(&hypothesis).map_err(LearnError::Ground)?,
                },
            };
            let sacrificed_ok = |is_pos: bool, i: usize| {
                // A soft example the sub-task already chose to sacrifice is
                // not a counterexample.
                let in_relevant = if is_pos {
                    relevant_pos.contains(&i)
                } else {
                    relevant_neg.contains(&i)
                };
                let soft = if is_pos {
                    task.positive[i].is_soft()
                } else {
                    task.negative[i].is_soft()
                };
                in_relevant && soft
            };
            let counter = violated
                .iter()
                .find(|(is_pos, i)| {
                    let hard = if *is_pos {
                        !task.positive[*i].is_soft()
                    } else {
                        !task.negative[*i].is_soft()
                    };
                    hard && !already(&relevant_pos, &relevant_neg, *is_pos, *i)
                })
                .or_else(|| {
                    violated.iter().find(|(is_pos, i)| {
                        !already(&relevant_pos, &relevant_neg, *is_pos, *i)
                            && !sacrificed_ok(*is_pos, *i)
                    })
                })
                .copied();
            match counter {
                None => {
                    stats.relevant = (relevant_pos.len() + relevant_neg.len()) as u32;
                    return Ok((hypothesis, stats));
                }
                Some((true, i)) => relevant_pos.push(i),
                Some((false, i)) => relevant_neg.push(i),
            }
        }
    }
}

/// World-based violation check; `None` if the fast path doesn't apply.
fn fast_violations(
    compiled_pos: &[CompiledExample],
    compiled_neg: &[CompiledExample],
    hypothesis: &Hypothesis,
) -> Option<Vec<(bool, usize)>> {
    let mut out = Vec::new();
    for (i, c) in compiled_pos.iter().enumerate() {
        if !c.accepted_by(&hypothesis.rules)? {
            out.push((true, i));
        }
    }
    for (i, c) in compiled_neg.iter().enumerate() {
        if c.accepted_by(&hypothesis.rules)? {
            out.push((false, i));
        }
    }
    Some(out)
}

/// Delta-grounding violation check over the compiled tree bases; `None` when
/// the examples were compiled without incremental grounders (the naive-ground
/// ablation).
fn grounded_violations(
    compiled_pos: &[CompiledExample],
    compiled_neg: &[CompiledExample],
    hypothesis: &Hypothesis,
) -> Result<Option<Vec<(bool, usize)>>, LearnError> {
    let mut out = Vec::new();
    for (i, c) in compiled_pos.iter().enumerate() {
        match c.accepted_by_grounding(&hypothesis.rules)? {
            Some(accepted) => {
                if !accepted {
                    out.push((true, i));
                }
            }
            None => return Ok(None),
        }
    }
    for (i, c) in compiled_neg.iter().enumerate() {
        match c.accepted_by_grounding(&hypothesis.rules)? {
            Some(accepted) => {
                if accepted {
                    out.push((false, i));
                }
            }
            None => return Ok(None),
        }
    }
    Ok(Some(out))
}

fn pick(examples: &[Example], indices: &[usize]) -> Vec<Example> {
    indices.iter().map(|&i| examples[i].clone()).collect()
}

fn already(pos: &[usize], neg: &[usize], is_pos: bool, i: usize) -> bool {
    if is_pos {
        pos.contains(&i)
    } else {
        neg.contains(&i)
    }
}
