//! Example compilation: parse each example once, build the per-parse-tree
//! base programs `G(C)[PT]`, and — when the hypothesis space is
//! constraint-only — enumerate the answer sets ("worlds") of each base
//! program so candidate constraints can be evaluated as pure filters.
//!
//! Soundness of the world view: for any program `P` and set of constraints
//! `C`, the stable models of `P ∪ C` are exactly the stable models of `P`
//! that satisfy every constraint in `C`. A tree is therefore admitted by
//! `G(C):H` iff some world of its base program violates no chosen
//! constraint.

use crate::example::Example;
use crate::space::Candidate;
use agenp_asp::{
    ground_with_stats, Atom, Bindings, CmpOp, GroundError, GroundMode, GroundOptions, GroundStats,
    IncrementalGrounder, Literal, Parallelism, Program, Rule, Solver, Symbol, Trace,
};
use agenp_grammar::{Asg, EarleyParser, ParseOptions, ParseTree, ProdId};
use std::collections::HashMap;

/// A single answer set of a base program, indexed for conjunctive-query
/// evaluation.
#[derive(Clone, Debug)]
pub struct World {
    atoms: Vec<Atom>,
    by_sig: HashMap<(Symbol, usize, Trace), Vec<usize>>,
}

impl World {
    /// Builds a world from a set of atoms.
    pub fn from_atoms(atoms: Vec<Atom>) -> World {
        let mut by_sig: HashMap<(Symbol, usize, Trace), Vec<usize>> = HashMap::new();
        for (i, a) in atoms.iter().enumerate() {
            by_sig
                .entry((a.pred, a.args.len(), a.trace.clone()))
                .or_default()
                .push(i);
        }
        World { atoms, by_sig }
    }

    /// True if the world contains the (ground) atom.
    pub fn contains(&self, atom: &Atom) -> bool {
        self.by_sig
            .get(&(atom.pred, atom.args.len(), atom.trace.clone()))
            .is_some_and(|ids| ids.iter().any(|&i| &self.atoms[i] == atom))
    }

    fn candidates(&self, pattern: &Atom) -> &[usize] {
        self.by_sig
            .get(&(pattern.pred, pattern.args.len(), pattern.trace.clone()))
            .map_or(&[], Vec::as_slice)
    }

    /// The world's atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }
}

/// Is the body of a (possibly non-ground) rule satisfiable in `world`, i.e.
/// does some grounding make every literal true?
pub fn body_holds(body: &[Literal], world: &World) -> bool {
    let mut bindings = Bindings::new();
    holds_rec(
        body,
        &mut Vec::from_iter(0..body.len()),
        &mut bindings,
        world,
    )
}

fn holds_rec(
    body: &[Literal],
    remaining: &mut Vec<usize>,
    bindings: &mut Bindings,
    world: &World,
) -> bool {
    if remaining.is_empty() {
        return true;
    }
    let all_bound = |lit: &Literal, b: &Bindings| {
        let mut vs = Vec::new();
        lit.collect_vars(&mut vs);
        vs.iter().all(|v| b.contains_key(v))
    };
    // Pick the next evaluable literal: bound comparisons and negations act
    // as filters; `V = expr` binds; positive atoms join against the world.
    let pick = remaining
        .iter()
        .position(|&i| match &body[i] {
            Literal::Cmp(CmpOp::Eq, agenp_asp::Term::Var(v), rhs) => {
                !bindings.contains_key(v) && rhs.vars().iter().all(|x| bindings.contains_key(x))
                    || all_bound(&body[i], bindings)
            }
            Literal::Cmp(..) | Literal::Neg(_) => all_bound(&body[i], bindings),
            Literal::Pos(_) => false,
        })
        .or_else(|| {
            remaining
                .iter()
                .position(|&i| matches!(&body[i], Literal::Pos(_)))
        });
    let Some(pos) = pick else {
        // Only unbound filters remain: the rule was unsafe; treat the body
        // as unsatisfiable rather than guessing.
        return false;
    };
    let idx = remaining.remove(pos);
    let result = match &body[idx] {
        Literal::Cmp(op, l, r) => {
            match (l.substitute(bindings), r.substitute(bindings)) {
                (Some(gl), Some(gr)) => {
                    op.eval(&gl, &gr) && holds_rec(body, remaining, bindings, world)
                }
                // An `=` binder: bind the variable side.
                _ => {
                    if let (CmpOp::Eq, agenp_asp::Term::Var(v), rhs) = (op, l, r) {
                        if let Some(val) = rhs.substitute(bindings) {
                            bindings.insert(*v, val);
                            let ok = holds_rec(body, remaining, bindings, world);
                            bindings.remove(v);
                            ok
                        } else {
                            false
                        }
                    } else {
                        false
                    }
                }
            }
        }
        Literal::Neg(a) => match a.substitute(bindings) {
            Some(g) => !world.contains(&g) && holds_rec(body, remaining, bindings, world),
            None => false,
        },
        Literal::Pos(a) => {
            let mut found = false;
            for &wi in world.candidates(a) {
                let atom = world.atoms[wi].clone();
                let mut trial = bindings.clone();
                if a.match_ground(&atom, &mut trial)
                    && holds_rec(body, remaining, &mut trial, world)
                {
                    found = true;
                    break;
                }
            }
            found
        }
    };
    remaining.insert(pos, idx);
    result
}

/// A compiled parse tree of an example.
#[derive(Debug)]
pub struct CompiledTree {
    /// The parse tree itself.
    pub tree: ParseTree,
    /// `G(C)[PT]` — annotations plus context, instantiated at every node.
    pub base: Program,
    /// Node traces grouped by production id (for hypothesis instantiation).
    pub traces_by_prod: HashMap<ProdId, Vec<Trace>>,
    /// The answer sets of `base` (empty if the base is unsatisfiable).
    pub worlds: Vec<World>,
    /// False if world enumeration hit the cap (monotone path unusable).
    pub worlds_complete: bool,
    /// Saturated base grounder: hypotheses are grounded as deltas on top of
    /// `base` instead of re-grounding it per evaluation. `None` when
    /// compiled with [`CompileOptions::naive_ground`] (benchmark ablation).
    pub grounder: Option<IncrementalGrounder>,
}

impl CompiledTree {
    /// Instantiates a candidate's rule at every node the candidate targets.
    pub fn instantiate(&self, candidate: &Candidate) -> Vec<Rule> {
        self.traces_by_prod
            .get(&candidate.target)
            .map(|traces| {
                traces
                    .iter()
                    .map(|t| candidate.rule.instantiate_at(t))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Does `world` (an answer set of `base`) violate the candidate
    /// constraint? Only meaningful for constraint candidates.
    pub fn world_violates(&self, world: &World, candidate: &Candidate) -> bool {
        debug_assert!(candidate.rule.is_constraint());
        self.instantiate(candidate)
            .iter()
            .any(|r| body_holds(&r.body, world))
    }
}

/// A compiled example: its parse trees plus metadata.
#[derive(Debug)]
pub struct CompiledExample {
    /// Index into the task's example list (positives first, then negatives).
    pub is_pos: bool,
    /// Violation penalty (None = hard).
    pub penalty: Option<u32>,
    /// Compiled parse trees (empty if the string is not in the CFG).
    pub trees: Vec<CompiledTree>,
    /// Rendered example text (diagnostics).
    pub text: String,
    /// Grounding work spent on this example's tree bases at compile time.
    pub ground_stats: GroundStats,
    /// Solver calls made while enumerating worlds.
    pub solver_calls: u64,
}

/// Options for example compilation.
#[derive(Clone, Copy, Debug)]
pub struct CompileOptions {
    /// Maximum parse trees per example.
    pub max_trees: usize,
    /// Maximum answer sets enumerated per tree (worlds).
    pub max_worlds: usize,
    /// Ground tree bases with the retained naive reference grounder and skip
    /// building incremental base grounders. Benchmark ablation only — the
    /// learner then re-grounds base + hypothesis from scratch per
    /// evaluation.
    pub naive_ground: bool,
    /// Grounder worker-thread policy for base saturation and delta
    /// evaluation (see [`Parallelism`] for the resolution order).
    pub parallelism: Parallelism,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            max_trees: 16,
            max_worlds: 64,
            naive_ground: false,
            parallelism: Parallelism::Auto,
        }
    }
}

impl CompileOptions {
    /// Sets the maximum parse trees per example.
    pub fn with_max_trees(mut self, max_trees: usize) -> CompileOptions {
        self.max_trees = max_trees;
        self
    }

    /// Sets the maximum answer sets enumerated per tree.
    pub fn with_max_worlds(mut self, max_worlds: usize) -> CompileOptions {
        self.max_worlds = max_worlds;
        self
    }

    /// Enables or disables the naive-reference grounding ablation.
    pub fn with_naive_ground(mut self, naive_ground: bool) -> CompileOptions {
        self.naive_ground = naive_ground;
        self
    }

    /// Sets the unified grounder worker-thread policy.
    pub fn with_parallelism(mut self, parallelism: impl Into<Parallelism>) -> CompileOptions {
        self.parallelism = parallelism.into();
        self
    }

    /// The parallelism policy these options apply.
    pub fn effective_parallelism(&self) -> Parallelism {
        self.parallelism
    }
}

impl CompiledExample {
    /// Is the example's string admitted under the hypothesis? Only valid
    /// for constraint-only hypotheses with completely enumerated worlds;
    /// returns `None` when that precondition fails (callers fall back to
    /// full semantics).
    pub fn accepted_by(&self, rules: &[(ProdId, agenp_asp::Rule)]) -> Option<bool> {
        if rules.iter().any(|(_, r)| !r.is_constraint()) {
            return None;
        }
        if self.trees.iter().any(|t| !t.worlds_complete) {
            return None;
        }
        for tree in &self.trees {
            for world in &tree.worlds {
                let killed = rules.iter().any(|(target, rule)| {
                    let cand = Candidate::new(*target, rule.clone());
                    tree.world_violates(world, &cand)
                });
                if !killed {
                    return Some(true);
                }
            }
        }
        Some(false)
    }

    /// Like [`CompiledExample::accepted_by`], but exact for arbitrary
    /// hypotheses: each tree's hypothesis instantiation is grounded as a
    /// delta over the tree's saturated base and checked for a stable model.
    /// Returns `Ok(None)` when a tree lacks a base grounder (the
    /// [`CompileOptions::naive_ground`] ablation); callers then fall back to
    /// full ASG semantics.
    ///
    /// # Errors
    ///
    /// Propagates grounding failures from the delta pass.
    pub fn accepted_by_grounding(
        &self,
        rules: &[(ProdId, Rule)],
    ) -> Result<Option<bool>, GroundError> {
        for tree in &self.trees {
            let Some(grounder) = &tree.grounder else {
                return Ok(None);
            };
            let mut delta: Vec<Rule> = Vec::new();
            for (target, rule) in rules {
                let cand = Candidate::new(*target, rule.clone());
                delta.extend(tree.instantiate(&cand));
            }
            let g = grounder.ground_delta(&delta)?;
            if Solver::new().max_models(1).solve(&g).satisfiable() {
                return Ok(Some(true));
            }
        }
        Ok(Some(false))
    }
}

/// Compiles an example against `grammar`.
///
/// # Errors
///
/// Propagates grounding failures from annotation or context programs.
pub fn compile_example(
    grammar: &Asg,
    example: &Example,
    is_pos: bool,
    opts: CompileOptions,
) -> Result<CompiledExample, GroundError> {
    let with_ctx = grammar.with_context(&example.context);
    let parser = EarleyParser::new(grammar.cfg());
    let tokens = agenp_grammar::Cfg::tokenize(&example.text);
    let trees = parser.parse_with(
        &tokens,
        ParseOptions {
            max_trees: opts.max_trees,
        },
    );
    let mut compiled = Vec::with_capacity(trees.len());
    let mut ground_stats = GroundStats::default();
    let mut solver_calls = 0u64;
    for tree in trees {
        let base = with_ctx.tree_program(&tree);
        let mut traces_by_prod: HashMap<ProdId, Vec<Trace>> = HashMap::new();
        tree.visit_nodes(|node, trace| {
            traces_by_prod
                .entry(node.prod)
                .or_default()
                .push(trace.clone());
        });
        // Ground the base once. The incremental grounder saturates it and
        // keeps the state around so candidate hypotheses can later be
        // grounded as deltas without redoing this work.
        let gopts = GroundOptions::default().with_parallelism(opts.effective_parallelism());
        let (g, grounder) = if opts.naive_ground {
            let (g, st) = ground_with_stats(&base, gopts.with_mode(GroundMode::Naive))?;
            ground_stats.absorb(st);
            (g, None)
        } else {
            let grounder = IncrementalGrounder::new(&base, gopts)?;
            ground_stats.absorb(grounder.base_stats());
            let (g, st) = grounder.ground_delta_with_stats(&[])?;
            ground_stats.absorb(st);
            (g, Some(grounder))
        };
        let result = Solver::new().max_models(opts.max_worlds).solve(&g);
        solver_calls += 1;
        let worlds_complete = result.complete();
        let worlds = result
            .models()
            .iter()
            .map(|m| World::from_atoms(m.atoms().to_vec()))
            .collect();
        compiled.push(CompiledTree {
            tree,
            base,
            traces_by_prod,
            worlds,
            worlds_complete,
            grounder,
        });
    }
    Ok(CompiledExample {
        is_pos,
        penalty: example.penalty,
        trees: compiled,
        text: example.text.clone(),
        ground_stats,
        solver_calls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use agenp_asp::Term;

    fn world(atoms: &[&str]) -> World {
        World::from_atoms(atoms.iter().map(|s| s.parse().unwrap()).collect())
    }

    #[test]
    fn body_holds_matches_conjunctions() {
        let w = world(&["p(1)", "p(2)", "q(2)"]);
        let r: Rule = ":- p(X), q(X).".parse().unwrap();
        assert!(body_holds(&r.body, &w));
        let r2: Rule = ":- p(X), q(X), X < 2.".parse().unwrap();
        assert!(!body_holds(&r2.body, &w));
        let r3: Rule = ":- p(X), not q(X).".parse().unwrap();
        assert!(body_holds(&r3.body, &w)); // p(1) with no q(1)
    }

    #[test]
    fn body_holds_respects_traces() {
        let w = world(&["size(2)@1", "size(3)@2"]);
        let r: Rule = ":- size(X)@1, size(X)@2.".parse().unwrap();
        assert!(!body_holds(&r.body, &w));
        let w2 = world(&["size(2)@1", "size(2)@2"]);
        assert!(body_holds(&r.body, &w2));
    }

    #[test]
    fn body_holds_evaluates_binders() {
        let w = world(&["n(3)", "m(4)"]);
        let r: Rule = ":- n(X), Y = X + 1, m(Y).".parse().unwrap();
        assert!(body_holds(&r.body, &w));
        let r2: Rule = ":- n(X), Y = X + 2, m(Y).".parse().unwrap();
        assert!(!body_holds(&r2.body, &w));
    }

    #[test]
    fn world_contains_uses_full_atom() {
        let w = world(&["p(1)"]);
        assert!(w.contains(&"p(1)".parse().unwrap()));
        assert!(!w.contains(&"p(2)".parse().unwrap()));
        assert!(
            !w.contains(&Atom::new("p", vec![Term::Int(1)]).with_trace(Trace::from_indices([1])))
        );
    }

    #[test]
    fn compile_builds_worlds() {
        let g: Asg = r#"
            policy -> "allow" { ok :- not vetoed. }
            policy -> "deny"
        "#
        .parse()
        .unwrap();
        let ex = Example::new("allow");
        let c = compile_example(&g, &ex, true, CompileOptions::default()).unwrap();
        assert!(c.is_pos);
        assert_eq!(c.trees.len(), 1);
        let t = &c.trees[0];
        assert_eq!(t.worlds.len(), 1);
        assert!(t.worlds_complete);
        assert!(t.worlds[0].contains(&"ok".parse().unwrap()));
    }

    #[test]
    fn accepted_by_matches_full_semantics() {
        let g: Asg = r#"
            policy -> "allow" { act(allow). }
        "#
        .parse()
        .unwrap();
        let storm: agenp_asp::Program = "storm.".parse().unwrap();
        let ex = Example::in_context("allow", storm.clone());
        let c = compile_example(&g, &ex, true, CompileOptions::default()).unwrap();
        let block: (agenp_grammar::ProdId, Rule) = (
            agenp_grammar::ProdId::from_index(0),
            ":- storm.".parse().unwrap(),
        );
        assert_eq!(c.accepted_by(&[]), Some(true));
        assert_eq!(c.accepted_by(std::slice::from_ref(&block)), Some(false));
        // Cross-check with full ASG semantics.
        let g2 = g.with_added_rules(std::slice::from_ref(&block)).unwrap();
        assert!(!g2.with_context(&storm).accepts("allow").unwrap());
        // Normal rules disable the fast check.
        let normal: (agenp_grammar::ProdId, Rule) = (
            agenp_grammar::ProdId::from_index(0),
            "ok :- storm.".parse().unwrap(),
        );
        assert_eq!(c.accepted_by(std::slice::from_ref(&normal)), None);
    }

    #[test]
    fn unparseable_example_has_no_trees() {
        let g: Asg = "policy -> \"allow\"".parse().unwrap();
        let ex = Example::new("forbidden string");
        let c = compile_example(&g, &ex, false, CompileOptions::default()).unwrap();
        assert!(c.trees.is_empty());
    }
}
