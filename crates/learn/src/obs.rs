//! Typed view over the global `agenp-obs` registry for the learner
//! (`learn.*` metrics). Per-run [`LearnStats`] stay the call-site API;
//! finished runs are folded in here when telemetry is enabled.

use crate::learner::LearnStats;
use agenp_obs::Counter;
use std::sync::{Arc, OnceLock};

/// Registry-backed totals for hypothesis learning (`learn.*`).
#[derive(Clone, Debug)]
pub struct LearnMetrics {
    /// Completed learning runs (`learn.runs`).
    pub runs: Arc<Counter>,
    /// Runs answered by the monotone fast path (`learn.monotone_runs`).
    pub monotone_runs: Arc<Counter>,
    /// Candidate rules considered (`learn.candidates`).
    pub candidates: Arc<Counter>,
    /// Answer-set worlds enumerated (`learn.worlds`).
    pub worlds: Arc<Counter>,
    /// Search nodes explored (`learn.search_nodes`).
    pub search_nodes: Arc<Counter>,
    /// Stable-model solver invocations (`learn.solver_calls`).
    pub solver_calls: Arc<Counter>,
    /// Hypothesis evaluations answered from the memo
    /// (`learn.eval_cache_hits`).
    pub eval_cache_hits: Arc<Counter>,
    /// Hypothesis evaluations that had to ground and solve
    /// (`learn.eval_cache_misses`).
    pub eval_cache_misses: Arc<Counter>,
}

impl LearnMetrics {
    /// The process-wide view (handles resolve once and are cached).
    pub fn global() -> &'static LearnMetrics {
        static VIEW: OnceLock<LearnMetrics> = OnceLock::new();
        VIEW.get_or_init(|| {
            let r = agenp_obs::registry();
            LearnMetrics {
                runs: r.counter("learn.runs"),
                monotone_runs: r.counter("learn.monotone_runs"),
                candidates: r.counter("learn.candidates"),
                worlds: r.counter("learn.worlds"),
                search_nodes: r.counter("learn.search_nodes"),
                solver_calls: r.counter("learn.solver_calls"),
                eval_cache_hits: r.counter("learn.eval_cache_hits"),
                eval_cache_misses: r.counter("learn.eval_cache_misses"),
            }
        })
    }

    /// Folds one finished run into the registry (no-op when telemetry is
    /// disabled).
    pub fn publish(stats: &LearnStats) {
        if !agenp_obs::enabled() {
            return;
        }
        let m = LearnMetrics::global();
        m.runs.incr();
        if stats.used_monotone {
            m.monotone_runs.incr();
        }
        m.candidates.add(stats.candidates as u64);
        m.worlds.add(stats.worlds as u64);
        m.search_nodes.add(stats.search_nodes);
        m.solver_calls.add(stats.solver_calls);
        m.eval_cache_hits.add(stats.eval_cache_hits);
        m.eval_cache_misses.add(stats.eval_cache_misses);
    }

    /// Cumulative totals as a [`LearnStats`] façade (`used_monotone` is
    /// true when any run took the fast path; grounder counters are
    /// tracked under `asp.ground.*` rather than duplicated here).
    pub fn read() -> LearnStats {
        let m = LearnMetrics::global();
        LearnStats {
            candidates: m.candidates.value() as usize,
            worlds: m.worlds.value() as usize,
            search_nodes: m.search_nodes.value(),
            used_monotone: m.monotone_runs.value() > 0,
            solver_calls: m.solver_calls.value(),
            eval_cache_hits: m.eval_cache_hits.value(),
            eval_cache_misses: m.eval_cache_misses.value(),
            ..LearnStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_is_gated() {
        agenp_obs::install(agenp_obs::ObsConfig::disabled());
        let before = LearnMetrics::read();
        LearnMetrics::publish(&LearnStats {
            candidates: 4,
            solver_calls: 2,
            ..LearnStats::default()
        });
        let after = LearnMetrics::read();
        assert_eq!(after.candidates, before.candidates);
        assert_eq!(after.solver_calls, before.solver_calls);

        agenp_obs::install(agenp_obs::ObsConfig::enabled());
        LearnMetrics::publish(&LearnStats {
            candidates: 4,
            solver_calls: 2,
            ..LearnStats::default()
        });
        let bumped = LearnMetrics::read();
        assert!(bumped.candidates >= before.candidates + 4);
        assert!(bumped.solver_calls >= before.solver_calls + 2);
        agenp_obs::install(agenp_obs::ObsConfig::disabled());
    }
}
