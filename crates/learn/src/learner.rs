//! The context-dependent ASG learning task (paper Definition 3) and its
//! solvers.
//!
//! A task `T = ⟨G, S_M, E⁺, E⁻⟩` asks for a minimal-cost hypothesis
//! `H ⊆ S_M` such that every positive example's string is in `L(G(C):H)`
//! and every negative example's string is not. Soft examples may instead be
//! *sacrificed* at their penalty (ILASP-style noise handling).
//!
//! Two solvers:
//!
//! * **Monotone** (constraint-only spaces): answer sets of each example
//!   tree's base program are enumerated once as "worlds"; a candidate
//!   constraint then behaves as a pure filter, and optimal learning becomes
//!   a weighted hitting-set problem solved by branch and bound.
//! * **Generic** (spaces with normal rules): iterative-deepening search over
//!   hypothesis subsets with memoized full answer-set coverage checks.

use crate::compile::{compile_example, CompileOptions, CompiledExample};
use crate::example::Example;
use crate::space::{Candidate, HypothesisSpace};
use agenp_asp::{
    ground_with_stats, Deadline, Exhausted, GroundError, GroundMode, GroundOptions, GroundStats,
    Program, Rule, Solver,
};
use agenp_grammar::{Asg, ProdId};
use std::collections::HashMap;
use std::fmt;

/// A context-dependent ASG learning task.
#[derive(Clone, Debug)]
pub struct LearningTask {
    /// The initial grammar `G`.
    pub grammar: Asg,
    /// The hypothesis space `S_M`.
    pub space: HypothesisSpace,
    /// Positive examples `E⁺`.
    pub positive: Vec<Example>,
    /// Negative examples `E⁻`.
    pub negative: Vec<Example>,
}

impl LearningTask {
    /// Creates a task with empty example sets.
    pub fn new(grammar: Asg, space: HypothesisSpace) -> LearningTask {
        LearningTask {
            grammar,
            space,
            positive: Vec::new(),
            negative: Vec::new(),
        }
    }

    /// Adds a positive example.
    pub fn pos(mut self, e: Example) -> LearningTask {
        self.positive.push(e);
        self
    }

    /// Adds a negative example.
    pub fn neg(mut self, e: Example) -> LearningTask {
        self.negative.push(e);
        self
    }

    /// Verifies a hypothesis against Definition 3 using full ASG semantics
    /// (independent of the learner's internal shortcuts). Returns the list
    /// of violated example indices as `(is_positive, index)`.
    ///
    /// # Errors
    ///
    /// Propagates grounding failures.
    pub fn violations(&self, hypothesis: &Hypothesis) -> Result<Vec<(bool, usize)>, GroundError> {
        let g = self
            .grammar
            .with_added_rules(&hypothesis.rules)
            .expect("hypothesis targets validated at learn time");
        let mut out = Vec::new();
        for (i, e) in self.positive.iter().enumerate() {
            let accepted =
                g.with_context(&e.context)
                    .accepts(&e.text)
                    .map_err(|err| match err {
                        agenp_grammar::AsgError::Ground(g) => g,
                        other => panic!("unexpected ASG error: {other}"),
                    })?;
            if !accepted {
                out.push((true, i));
            }
        }
        for (i, e) in self.negative.iter().enumerate() {
            let accepted =
                g.with_context(&e.context)
                    .accepts(&e.text)
                    .map_err(|err| match err {
                        agenp_grammar::AsgError::Ground(g) => g,
                        other => panic!("unexpected ASG error: {other}"),
                    })?;
            if accepted {
                out.push((false, i));
            }
        }
        Ok(out)
    }
}

/// A learned hypothesis: the chosen rules with their target productions.
#[derive(Clone, Debug, Default)]
pub struct Hypothesis {
    /// The learned `(production, rule)` pairs.
    pub rules: Vec<(ProdId, Rule)>,
    /// Total cost: rule lengths plus penalties of sacrificed examples.
    pub cost: u64,
    /// Sacrificed (violated) soft examples as `(is_positive, index)`.
    pub sacrificed: Vec<(bool, usize)>,
}

impl Hypothesis {
    /// The grammar `G:H`.
    pub fn apply(&self, grammar: &Asg) -> Asg {
        grammar
            .with_added_rules(&self.rules)
            .expect("validated targets")
    }
}

impl fmt::Display for Hypothesis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "hypothesis (cost {}):", self.cost)?;
        for (p, r) in &self.rules {
            writeln!(f, "  p{} ⊕ {}", p.index(), r)?;
        }
        for (is_pos, i) in &self.sacrificed {
            writeln!(
                f,
                "  sacrificed {} example #{i}",
                if *is_pos { "positive" } else { "negative" }
            )?;
        }
        Ok(())
    }
}

/// Errors raised by the learner.
#[derive(Clone, Debug)]
pub enum LearnError {
    /// A candidate rule is unsafe.
    UnsafeCandidate(String),
    /// A candidate targets a production outside the grammar.
    BadTarget(usize),
    /// Grounding failed while compiling an example or checking coverage.
    Ground(GroundError),
    /// No hypothesis within the cost bound satisfies the task.
    Unsatisfiable,
    /// The search budget was exhausted before an optimal solution was proven.
    Budget,
    /// A [`RunBudget`](agenp_asp::RunBudget) resource (currently the
    /// wall-clock deadline) ran out before any solution was found.
    Exhausted(Exhausted),
    /// The meta-encoding backend does not apply to this task.
    MetaInapplicable(String),
}

impl fmt::Display for LearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearnError::UnsafeCandidate(r) => write!(f, "unsafe candidate rule `{r}`"),
            LearnError::BadTarget(i) => write!(f, "candidate targets unknown production {i}"),
            LearnError::Ground(e) => write!(f, "grounding failed: {e}"),
            LearnError::Unsatisfiable => write!(f, "no hypothesis satisfies the examples"),
            LearnError::Budget => write!(f, "search budget exhausted"),
            LearnError::Exhausted(kind) => write!(f, "resource exhausted: {kind}"),
            LearnError::MetaInapplicable(why) => {
                write!(f, "meta-encoding learner not applicable: {why}")
            }
        }
    }
}

impl std::error::Error for LearnError {}

impl From<GroundError> for LearnError {
    fn from(e: GroundError) -> LearnError {
        LearnError::Ground(e)
    }
}

/// Internal search result: (total cost, chosen candidate indices,
/// sacrificed examples).
type BestSolution = (u64, Vec<u32>, Vec<(bool, usize)>);

/// Statistics describing a learning run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LearnStats {
    /// Candidates in the hypothesis space.
    pub candidates: usize,
    /// Answer-set worlds enumerated across all example parse trees.
    pub worlds: usize,
    /// Search nodes explored.
    pub search_nodes: u64,
    /// True if the monotone (constraint-only) fast path was used.
    pub used_monotone: bool,
    /// Grounding passes spent compiling examples and evaluating hypotheses.
    pub grounding_passes: u64,
    /// Ground-rule instantiations emitted across all grounding work (the
    /// primary grounder cost metric; see [`agenp_asp::GroundStats`]).
    pub rules_instantiated: u64,
    /// Stable-model solver invocations.
    pub solver_calls: u64,
    /// Hypothesis evaluations answered from the memo without re-grounding.
    pub eval_cache_hits: u64,
    /// Hypothesis evaluations that had to ground and solve.
    pub eval_cache_misses: u64,
}

impl LearnStats {
    /// Folds a grounder's counters into the learner totals.
    fn absorb_ground(&mut self, g: GroundStats) {
        self.grounding_passes += g.passes;
        self.rules_instantiated += g.rules_instantiated;
    }
}

/// Branch-ordering heuristic for the monotone search — the paper's §V-C
/// suggestion that statistics over the data can guide the symbolic
/// hypothesis-space search.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Branching {
    /// Order a world's killers by discrimination: prefer cheap candidates
    /// that kill many negative worlds and few positive worlds.
    #[default]
    Guided,
    /// Order killers by cost only (the unguided baseline).
    CostFirst,
}

/// Learner configuration.
#[derive(Clone, Copy, Debug)]
pub struct LearnOptions {
    /// Maximum total hypothesis cost considered.
    pub max_cost: u64,
    /// Example compilation bounds.
    pub compile: CompileOptions,
    /// Disable the monotone fast path (ablation).
    pub force_generic: bool,
    /// Search node budget for the generic path.
    pub max_nodes: u64,
    /// Branch-ordering heuristic (monotone path).
    pub branching: Branching,
    /// Wall-clock deadline for the hypothesis search (default: none).
    pub deadline: Deadline,
    /// Memoize hypothesis evaluations on the generic path (disable for
    /// ablation benchmarks; results must be identical either way).
    pub eval_cache: bool,
}

impl Default for LearnOptions {
    fn default() -> LearnOptions {
        LearnOptions {
            max_cost: 64,
            compile: CompileOptions::default(),
            force_generic: false,
            max_nodes: 2_000_000,
            branching: Branching::Guided,
            deadline: Deadline::none(),
            eval_cache: true,
        }
    }
}

impl LearnOptions {
    /// Sets the maximum total hypothesis cost considered.
    pub fn with_max_cost(mut self, max_cost: u64) -> LearnOptions {
        self.max_cost = max_cost;
        self
    }

    /// Sets the example compilation bounds.
    pub fn with_compile(mut self, compile: CompileOptions) -> LearnOptions {
        self.compile = compile;
        self
    }

    /// Enables or disables forcing the generic search path (ablation).
    pub fn with_force_generic(mut self, force_generic: bool) -> LearnOptions {
        self.force_generic = force_generic;
        self
    }

    /// Sets the search node budget for the generic path.
    pub fn with_max_nodes(mut self, max_nodes: u64) -> LearnOptions {
        self.max_nodes = max_nodes;
        self
    }

    /// Selects the branch-ordering heuristic for the monotone path.
    pub fn with_branching(mut self, branching: Branching) -> LearnOptions {
        self.branching = branching;
        self
    }

    /// Sets the wall-clock deadline for the hypothesis search.
    pub fn with_deadline(mut self, deadline: Deadline) -> LearnOptions {
        self.deadline = deadline;
        self
    }

    /// Enables or disables hypothesis-evaluation memoization on the
    /// generic path (disable for ablation benchmarks).
    pub fn with_eval_cache(mut self, eval_cache: bool) -> LearnOptions {
        self.eval_cache = eval_cache;
        self
    }
}

/// The inductive learner.
#[derive(Clone, Copy, Debug, Default)]
pub struct Learner {
    options: LearnOptions,
}

impl Learner {
    /// A learner with default options.
    pub fn new() -> Learner {
        Learner::default()
    }

    /// A learner with explicit options.
    pub fn with_options(options: LearnOptions) -> Learner {
        Learner { options }
    }

    /// The learner's options.
    pub fn options(&self) -> &LearnOptions {
        &self.options
    }

    /// Solves the task, returning a minimal-cost hypothesis.
    ///
    /// # Errors
    ///
    /// [`LearnError::Unsatisfiable`] if no hypothesis within the cost bound
    /// covers the examples; [`LearnError::UnsafeCandidate`] /
    /// [`LearnError::BadTarget`] for malformed spaces; grounding errors.
    pub fn learn(&self, task: &LearningTask) -> Result<Hypothesis, LearnError> {
        self.learn_with_stats(task).map(|(h, _)| h)
    }

    /// Like [`Learner::learn`], additionally returning [`LearnStats`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Learner::learn`].
    pub fn learn_with_stats(
        &self,
        task: &LearningTask,
    ) -> Result<(Hypothesis, LearnStats), LearnError> {
        let mut span = agenp_obs::span!(
            "learn.run",
            candidates = task.space.len(),
            positives = task.positive.len(),
            negatives = task.negative.len(),
        );
        let result = self.learn_with_stats_inner(task);
        if span.is_live() {
            match &result {
                Ok((hypothesis, stats)) => {
                    span.record("hypothesis_rules", hypothesis.rules.len());
                    span.record("monotone", stats.used_monotone);
                    span.record("search_nodes", stats.search_nodes);
                    span.record("eval_cache_hits", stats.eval_cache_hits);
                    crate::obs::LearnMetrics::publish(stats);
                }
                Err(_) => span.record("error", true),
            }
        }
        result
    }

    fn learn_with_stats_inner(
        &self,
        task: &LearningTask,
    ) -> Result<(Hypothesis, LearnStats), LearnError> {
        // Validate the space.
        for c in task.space.candidates() {
            if let Some(v) = c.rule.unsafe_var() {
                return Err(LearnError::UnsafeCandidate(format!(
                    "{} ({v} unbound)",
                    c.rule
                )));
            }
            if c.target.index() >= task.grammar.cfg().production_count() {
                return Err(LearnError::BadTarget(c.target.index()));
            }
        }
        // Compile examples.
        let mut compiled: Vec<CompiledExample> = Vec::new();
        for e in &task.positive {
            compiled.push(compile_example(
                &task.grammar,
                e,
                true,
                self.options.compile,
            )?);
        }
        for e in &task.negative {
            compiled.push(compile_example(
                &task.grammar,
                e,
                false,
                self.options.compile,
            )?);
        }
        let monotone_ok = !self.options.force_generic
            && task.space.constraints_only()
            && compiled
                .iter()
                .all(|e| e.trees.iter().all(|t| t.worlds_complete));
        let mut stats = LearnStats {
            candidates: task.space.len(),
            worlds: compiled
                .iter()
                .flat_map(|e| e.trees.iter())
                .map(|t| t.worlds.len())
                .sum(),
            used_monotone: monotone_ok,
            ..LearnStats::default()
        };
        for ex in &compiled {
            stats.absorb_ground(ex.ground_stats);
            stats.solver_calls += ex.solver_calls;
        }
        let hypothesis = if monotone_ok {
            self.learn_monotone(task, &compiled, &mut stats.search_nodes)
        } else {
            self.learn_generic(task, &compiled, &mut stats)
        }?;
        Ok((hypothesis, stats))
    }

    // --- Monotone (constraint-only) path ---------------------------------

    fn learn_monotone(
        &self,
        task: &LearningTask,
        compiled: &[CompiledExample],
        nodes_out: &mut u64,
    ) -> Result<Hypothesis, LearnError> {
        let candidates = task.space.candidates();
        // Flatten worlds across examples and trees.
        let mut n_worlds: usize = 0;
        // kill[c] = indices of worlds violated by candidate c.
        let mut kill: Vec<Vec<u32>> = vec![Vec::new(); candidates.len()];
        let mut worlds_of_ex: Vec<Vec<u32>> = vec![Vec::new(); compiled.len()];
        for (ei, ex) in compiled.iter().enumerate() {
            for tree in &ex.trees {
                for world in &tree.worlds {
                    let wi = n_worlds as u32;
                    n_worlds += 1;
                    worlds_of_ex[ei].push(wi);
                    for (ci, cand) in candidates.iter().enumerate() {
                        if tree.world_violates(world, cand) {
                            kill[ci].push(wi);
                        }
                    }
                }
            }
        }
        let killers_of_world: Vec<Vec<u32>> = {
            let mut k: Vec<Vec<u32>> = vec![Vec::new(); n_worlds];
            for (ci, ws) in kill.iter().enumerate() {
                for &w in ws {
                    k[w as usize].push(ci as u32);
                }
            }
            k
        };

        // Feasibility of the empty requirement set: positives with no worlds
        // can never be covered (must be sacrificed or the task fails).
        let mut base_cost: u64 = 0;
        let mut base_sacrificed: Vec<(bool, usize)> = Vec::new();
        let mut pos_alive: HashMap<usize, Vec<u32>> = HashMap::new();
        let mut neg_pending: Vec<usize> = Vec::new();
        for (ei, ex) in compiled.iter().enumerate() {
            if ex.is_pos {
                if worlds_of_ex[ei].is_empty() {
                    match ex.penalty {
                        Some(p) => {
                            base_cost += u64::from(p);
                            base_sacrificed.push((true, pos_index(compiled, ei)));
                        }
                        None => return Err(LearnError::Unsatisfiable),
                    }
                } else {
                    pos_alive.insert(ei, worlds_of_ex[ei].clone());
                }
            } else if !worlds_of_ex[ei].is_empty() {
                neg_pending.push(ei);
            }
        }

        // Discrimination statistics for guided branching (§V-C).
        let mut neg_kills = vec![0u32; candidates.len()];
        let mut pos_kills = vec![0u32; candidates.len()];
        for (ci, ws) in kill.iter().enumerate() {
            for &w in ws {
                let ei = world_owner(&worlds_of_ex, w);
                if compiled[ei].is_pos {
                    pos_kills[ci] += 1;
                } else {
                    neg_kills[ci] += 1;
                }
            }
        }
        let mut search = MonotoneSearch {
            candidates,
            compiled,
            killers_of_world: &killers_of_world,
            kill: &kill,
            neg_kills: &neg_kills,
            pos_kills: &pos_kills,
            branching: self.options.branching,
            best: None,
            max_cost: self.options.max_cost,
            nodes: 0,
            max_nodes: self.options.max_nodes,
            deadline: self.options.deadline,
            interrupted: false,
        };
        let state = MonoState {
            chosen: Vec::new(),
            forbidden: vec![false; candidates.len()],
            cost: base_cost,
            pos_alive,
            neg_unhit: neg_pending
                .iter()
                .map(|&ei| (ei, worlds_of_ex[ei].clone()))
                .collect(),
            sacrificed: base_sacrificed,
        };
        search.dfs(state);
        *nodes_out = search.nodes;
        if search.best.is_none() {
            if search.interrupted {
                return Err(LearnError::Exhausted(Exhausted::Deadline));
            }
            if search.nodes >= search.max_nodes {
                return Err(LearnError::Budget);
            }
        }
        // NOTE: if the node budget ran out after a solution was found, the
        // solution is returned even though minimality is no longer proven.
        search
            .best
            .ok_or(LearnError::Unsatisfiable)
            .map(|(cost, chosen, sacrificed)| Hypothesis {
                rules: chosen
                    .iter()
                    .map(|&ci| {
                        let c = &candidates[ci as usize];
                        (c.target, c.rule.clone())
                    })
                    .collect(),
                cost,
                sacrificed,
            })
    }

    // --- Generic path -----------------------------------------------------

    fn learn_generic(
        &self,
        task: &LearningTask,
        compiled: &[CompiledExample],
        stats: &mut LearnStats,
    ) -> Result<Hypothesis, LearnError> {
        let candidates = task.space.candidates();
        let mut cache: HashMap<(usize, usize, Vec<u32>), bool> = HashMap::new();
        // Iterative deepening over rule cost.
        let max_rule_cost: u64 = candidates
            .iter()
            .map(|c| u64::from(c.cost))
            .sum::<u64>()
            .min(self.options.max_cost);
        let mut best: Option<BestSolution> = None;
        let mut deadline_hit = false;
        for budget in 0..=max_rule_cost {
            if best.as_ref().is_some_and(|(c, _, _)| *c <= budget) {
                break;
            }
            let mut chosen: Vec<u32> = Vec::new();
            self.generic_dfs(
                task,
                compiled,
                candidates,
                0,
                budget,
                &mut chosen,
                &mut cache,
                stats,
                &mut deadline_hit,
                &mut best,
            )?;
            if deadline_hit {
                return best
                    .map(|(cost, chosen, sacrificed)| Hypothesis {
                        rules: chosen
                            .iter()
                            .map(|&ci| {
                                let c = &candidates[ci as usize];
                                (c.target, c.rule.clone())
                            })
                            .collect(),
                        cost,
                        sacrificed,
                    })
                    .ok_or(LearnError::Exhausted(Exhausted::Deadline));
            }
            if stats.search_nodes >= self.options.max_nodes {
                return best
                    .map(|(cost, chosen, sacrificed)| Hypothesis {
                        rules: chosen
                            .iter()
                            .map(|&ci| {
                                let c = &candidates[ci as usize];
                                (c.target, c.rule.clone())
                            })
                            .collect(),
                        cost,
                        sacrificed,
                    })
                    .ok_or(LearnError::Budget);
            }
        }
        best.map(|(cost, chosen, sacrificed)| Hypothesis {
            rules: chosen
                .iter()
                .map(|&ci| {
                    let c = &candidates[ci as usize];
                    (c.target, c.rule.clone())
                })
                .collect(),
            cost,
            sacrificed,
        })
        .ok_or(LearnError::Unsatisfiable)
    }

    #[allow(clippy::too_many_arguments)]
    fn generic_dfs(
        &self,
        task: &LearningTask,
        compiled: &[CompiledExample],
        candidates: &[Candidate],
        next: usize,
        budget: u64,
        chosen: &mut Vec<u32>,
        cache: &mut HashMap<(usize, usize, Vec<u32>), bool>,
        stats: &mut LearnStats,
        deadline_hit: &mut bool,
        best: &mut Option<BestSolution>,
    ) -> Result<(), LearnError> {
        stats.search_nodes += 1;
        if *deadline_hit || stats.search_nodes >= self.options.max_nodes {
            return Ok(());
        }
        if self.options.deadline.expired() {
            *deadline_hit = true;
            return Ok(());
        }
        // Evaluate the current subset exactly at its own cost level.
        let rule_cost: u64 = chosen
            .iter()
            .map(|&c| u64::from(candidates[c as usize].cost))
            .sum();
        if rule_cost == budget {
            self.evaluate_generic(task, compiled, candidates, chosen, cache, stats, best)?;
            return Ok(());
        }
        if next >= candidates.len() || rule_cost > budget {
            return Ok(());
        }
        // Include candidates[next] (if it fits), then exclude it.
        let c_cost = u64::from(candidates[next].cost);
        if rule_cost + c_cost <= budget {
            chosen.push(next as u32);
            self.generic_dfs(
                task,
                compiled,
                candidates,
                next + 1,
                budget,
                chosen,
                cache,
                stats,
                deadline_hit,
                best,
            )?;
            chosen.pop();
        }
        self.generic_dfs(
            task,
            compiled,
            candidates,
            next + 1,
            budget,
            chosen,
            cache,
            stats,
            deadline_hit,
            best,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn evaluate_generic(
        &self,
        _task: &LearningTask,
        compiled: &[CompiledExample],
        candidates: &[Candidate],
        chosen: &[u32],
        cache: &mut HashMap<(usize, usize, Vec<u32>), bool>,
        stats: &mut LearnStats,
        best: &mut Option<BestSolution>,
    ) -> Result<(), LearnError> {
        let rule_cost: u64 = chosen
            .iter()
            .map(|&c| u64::from(candidates[c as usize].cost))
            .sum();
        let mut total = rule_cost;
        let mut sacrificed = Vec::new();
        for (ei, ex) in compiled.iter().enumerate() {
            let mut accepted = false;
            for (ti, tree) in ex.trees.iter().enumerate() {
                // Only candidates whose target occurs in this tree matter.
                let relevant: Vec<u32> = chosen
                    .iter()
                    .copied()
                    .filter(|&ci| {
                        tree.traces_by_prod
                            .contains_key(&candidates[ci as usize].target)
                    })
                    .collect();
                let key = (ei, ti, relevant.clone());
                let cached = if self.options.eval_cache {
                    cache.get(&key).copied()
                } else {
                    None
                };
                let ok = if let Some(v) = cached {
                    stats.eval_cache_hits += 1;
                    v
                } else {
                    stats.eval_cache_misses += 1;
                    let mut delta: Vec<Rule> = Vec::new();
                    for &ci in &relevant {
                        delta.extend(tree.instantiate(&candidates[ci as usize]));
                    }
                    // The hypothesis is a delta over the tree's saturated base
                    // grounding; only ablation runs re-ground from scratch.
                    let g = match &tree.grounder {
                        Some(grounder) => {
                            let (g, st) = grounder.ground_delta_with_stats(&delta)?;
                            stats.absorb_ground(st);
                            g
                        }
                        None => {
                            let mut program: Program = tree.base.clone();
                            for rule in delta {
                                program.push(rule);
                            }
                            let (g, st) = ground_with_stats(
                                &program,
                                GroundOptions::default().with_mode(GroundMode::Naive),
                            )?;
                            stats.absorb_ground(st);
                            g
                        }
                    };
                    let v = Solver::new().max_models(1).solve(&g).satisfiable();
                    stats.solver_calls += 1;
                    if self.options.eval_cache {
                        cache.insert(key, v);
                    }
                    v
                };
                if ok {
                    accepted = true;
                    break;
                }
            }
            let satisfied = accepted == ex.is_pos;
            if !satisfied {
                match ex.penalty {
                    Some(p) => {
                        total += u64::from(p);
                        sacrificed.push((ex.is_pos, local_index(compiled, ei)));
                    }
                    None => return Ok(()), // hard violation: subset invalid
                }
            }
            if best.as_ref().is_some_and(|(c, _, _)| *c <= total) {
                return Ok(());
            }
        }
        if total <= self.options.max_cost && best.as_ref().is_none_or(|(c, _, _)| total < *c) {
            *best = Some((total, chosen.to_vec(), sacrificed));
        }
        Ok(())
    }
}

/// Converts a flat compiled-example index into the positive-list index.
fn pos_index(compiled: &[CompiledExample], ei: usize) -> usize {
    debug_assert!(compiled[ei].is_pos);
    ei
}

/// The example owning a flat world index.
fn world_owner(worlds_of_ex: &[Vec<u32>], w: u32) -> usize {
    worlds_of_ex
        .iter()
        .position(|ws| ws.contains(&w))
        .expect("every world belongs to an example")
}

/// Converts a flat compiled index into the within-list index (positives are
/// stored first).
fn local_index(compiled: &[CompiledExample], ei: usize) -> usize {
    if compiled[ei].is_pos {
        ei
    } else {
        ei - compiled.iter().filter(|e| e.is_pos).count()
    }
}

struct MonotoneSearch<'a> {
    candidates: &'a [Candidate],
    compiled: &'a [CompiledExample],
    killers_of_world: &'a [Vec<u32>],
    kill: &'a [Vec<u32>],
    neg_kills: &'a [u32],
    pos_kills: &'a [u32],
    branching: Branching,
    best: Option<BestSolution>,
    max_cost: u64,
    nodes: u64,
    max_nodes: u64,
    deadline: Deadline,
    interrupted: bool,
}

#[derive(Clone)]
struct MonoState {
    chosen: Vec<u32>,
    forbidden: Vec<bool>,
    cost: u64,
    /// Surviving worlds per still-satisfiable positive example.
    pos_alive: HashMap<usize, Vec<u32>>,
    /// Unhit worlds per still-required negative example.
    neg_unhit: Vec<(usize, Vec<u32>)>,
    sacrificed: Vec<(bool, usize)>,
}

impl MonotoneSearch<'_> {
    fn dfs(&mut self, state: MonoState) {
        if self.interrupted {
            return;
        }
        self.nodes += 1;
        if self.nodes >= self.max_nodes {
            return;
        }
        if self.deadline.expired() {
            self.interrupted = true;
            return;
        }
        if state.cost >= self.best.as_ref().map_or(self.max_cost + 1, |(c, _, _)| *c) {
            return;
        }
        // Pick the unhit negative world with the fewest remaining killers.
        let mut pick: Option<(usize, u32)> = None; // (neg list index, world)
        let mut fewest = usize::MAX;
        for (ni, (_, unhit)) in state.neg_unhit.iter().enumerate() {
            for &w in unhit {
                let n = self.killers_of_world[w as usize]
                    .iter()
                    .filter(|&&c| !state.forbidden[c as usize] && !state.chosen.contains(&c))
                    .count();
                if n < fewest {
                    fewest = n;
                    pick = Some((ni, w));
                }
            }
        }
        let Some((ni, w)) = pick else {
            // All negative requirements met: record.
            let better = self.best.as_ref().is_none_or(|(c, _, _)| state.cost < *c);
            if better && state.cost <= self.max_cost {
                self.best = Some((state.cost, state.chosen.clone(), state.sacrificed.clone()));
            }
            return;
        };
        // Branch 1..k: choose each usable killer of w (excluding previously
        // tried ones to avoid permutation blowup), best-scored first.
        let mut killers: Vec<u32> = self.killers_of_world[w as usize]
            .iter()
            .copied()
            .filter(|&c| !state.forbidden[c as usize] && !state.chosen.contains(&c))
            .collect();
        match self.branching {
            Branching::CostFirst => {
                killers.sort_by_key(|&c| self.candidates[c as usize].cost);
            }
            Branching::Guided => {
                killers.sort_by_key(|&c| {
                    let ci = c as usize;
                    (
                        self.candidates[ci].cost,
                        std::cmp::Reverse(self.neg_kills[ci]),
                        self.pos_kills[ci],
                    )
                });
            }
        }
        let mut tried: Vec<u32> = Vec::new();
        for &c in &killers {
            let mut child = state.clone();
            for &t in &tried {
                child.forbidden[t as usize] = true;
            }
            tried.push(c);
            child.chosen.push(c);
            child.cost += u64::from(self.candidates[c as usize].cost);
            // Update negative requirements: remove all worlds killed by c.
            let killed: &[u32] = &self.kill[c as usize];
            for (_, unhit) in &mut child.neg_unhit {
                unhit.retain(|x| !killed.contains(x));
            }
            child.neg_unhit.retain(|(_, unhit)| !unhit.is_empty());
            // Update positives: drop killed worlds; dead positives must be
            // sacrificed (or the branch is infeasible).
            let mut feasible = true;
            let mut newly_dead: Vec<usize> = Vec::new();
            for (&ei, alive) in &mut child.pos_alive {
                alive.retain(|x| !killed.contains(x));
                if alive.is_empty() {
                    newly_dead.push(ei);
                }
            }
            for ei in newly_dead {
                child.pos_alive.remove(&ei);
                match self.compiled[ei].penalty {
                    Some(p) => {
                        child.cost += u64::from(p);
                        child.sacrificed.push((true, ei));
                    }
                    None => {
                        feasible = false;
                        break;
                    }
                }
            }
            if feasible {
                self.dfs(child);
            }
        }
        // Final branch: sacrifice the negative example (soft only).
        let (ei, _) = state.neg_unhit[ni];
        if let Some(p) = self.compiled[ei].penalty {
            let mut child = state;
            for &t in &tried {
                child.forbidden[t as usize] = true;
            }
            child.cost += u64::from(p);
            child
                .sacrificed
                .push((false, local_index(self.compiled, ei)));
            child.neg_unhit.retain(|&(e, _)| e != ei);
            self.dfs(child);
        }
    }
}
