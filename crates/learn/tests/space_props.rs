//! Property tests for hypothesis-space generation: every generated
//! candidate is safe, within the declared bounds, canonical, and unique.

use agenp_asp::{CmpOp, Literal, Term};
use agenp_grammar::ProdId;
use agenp_learn::{ModeArg, ModeAtom, ModeBias, ModeCmp, ModeLiteral};
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_bias() -> impl Strategy<Value = ModeBias> {
    let preds = prop_oneof![
        Just(vec!["p", "q"]),
        Just(vec!["p"]),
        Just(vec!["alpha", "beta", "gamma"]),
    ];
    (
        preds,
        1usize..3,     // max_body
        1usize..3,     // max_vars
        any::<bool>(), // with var comparisons
        any::<bool>(), // with const comparisons
        any::<bool>(), // negative polarity allowed
    )
        .prop_map(|(preds, max_body, max_vars, var_cmp, const_cmp, neg)| {
            let body = preds
                .iter()
                .map(|p| {
                    let atom = ModeAtom::local(p, vec![ModeArg::Var]);
                    if neg {
                        ModeLiteral::both(atom)
                    } else {
                        ModeLiteral::positive(atom)
                    }
                })
                .collect();
            let mut bias = ModeBias::constraints(vec![ProdId::from_index(0)], body)
                .max_body(max_body)
                .max_vars(max_vars);
            if var_cmp {
                bias = bias.with_var_comparisons(vec![CmpOp::Lt]);
            }
            if const_cmp {
                bias = bias.with_comparisons(vec![ModeCmp {
                    ops: vec![CmpOp::Ge],
                    constants: vec![Term::Int(1), Term::Int(2)],
                }]);
            }
            bias
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated candidate is safe.
    #[test]
    fn generated_candidates_are_safe(bias in arb_bias()) {
        for c in bias.generate().candidates() {
            prop_assert!(c.rule.unsafe_var().is_none(), "unsafe: {}", c.rule);
        }
    }

    /// Bodies respect max_body (+1 for the optional comparison literal) and
    /// variables respect max_vars.
    #[test]
    fn generated_candidates_respect_bounds(bias in arb_bias()) {
        let max_body = bias.max_body;
        let max_vars = bias.max_vars;
        for c in bias.generate().candidates() {
            let atoms = c.rule.body.iter().filter(|l| l.atom().is_some()).count();
            let cmps = c.rule.body.len() - atoms;
            prop_assert!(atoms <= max_body, "too many atoms: {}", c.rule);
            prop_assert!(cmps <= 1, "too many comparisons: {}", c.rule);
            prop_assert!(c.rule.vars().len() <= max_vars, "too many vars: {}", c.rule);
        }
    }

    /// No duplicate candidates, and variables are canonically named.
    #[test]
    fn generated_candidates_are_canonical(bias in arb_bias()) {
        let space = bias.generate();
        let mut seen = HashSet::new();
        for c in space.candidates() {
            prop_assert!(seen.insert(c.rule.to_string()), "duplicate: {}", c.rule);
            // First variable occurrence order must be V1, V2, …
            let mut expected = 1;
            let mut mapped: Vec<String> = Vec::new();
            for v in c.rule.vars() {
                let name = v.to_string();
                if !mapped.contains(&name) {
                    prop_assert_eq!(&name, &format!("V{expected}"), "rule {}", c.rule);
                    mapped.push(name);
                    expected += 1;
                }
            }
        }
    }

    /// Costs equal rule lengths.
    #[test]
    fn candidate_costs_match_length(bias in arb_bias()) {
        for c in bias.generate().candidates() {
            prop_assert_eq!(c.cost as usize, c.rule.len().max(1));
        }
    }

    /// Comparison literals only reference variables bound by body atoms.
    #[test]
    fn comparisons_are_grounded_by_atoms(bias in arb_bias()) {
        for c in bias.generate().candidates() {
            let mut atom_vars = Vec::new();
            for l in &c.rule.body {
                if let Some(a) = l.atom() {
                    if matches!(l, Literal::Pos(_)) {
                        a.collect_vars(&mut atom_vars);
                    }
                }
            }
            for l in &c.rule.body {
                if let Literal::Cmp(_, x, y) = l {
                    for v in x.vars().into_iter().chain(y.vars()) {
                        prop_assert!(
                            atom_vars.contains(&v),
                            "comparison var {v} unbound in {}",
                            c.rule
                        );
                    }
                }
            }
        }
    }
}
