//! End-to-end tests of the context-dependent ASG learner (Definition 3),
//! including monotone/generic path agreement, minimality, noise handling,
//! and the incremental driver.

use agenp_asp::Program;
use agenp_grammar::{Asg, ProdId};
use agenp_learn::{Example, HypothesisSpace, LearnError, LearnOptions, Learner, LearningTask};

fn pid(i: usize) -> ProdId {
    ProdId::from_index(i)
}

/// A two-policy language: `allow` / `deny`, with weather context facts.
fn weather_grammar() -> Asg {
    r#"
        policy -> "allow" { act(allow). }
        policy -> "deny"  { act(deny). }
    "#
    .parse()
    .unwrap()
}

fn ctx(facts: &str) -> Program {
    facts.parse().unwrap()
}

fn weather_space() -> HypothesisSpace {
    HypothesisSpace::from_texts(&[
        (pid(0), ":- weather(rain)."),
        (pid(0), ":- weather(clear)."),
        (pid(1), ":- weather(rain)."),
        (pid(1), ":- weather(clear)."),
    ])
}

#[test]
fn learns_context_dependent_constraint() {
    // allow is invalid in rain; deny is always fine.
    let task = LearningTask::new(weather_grammar(), weather_space())
        .pos(Example::in_context("allow", ctx("weather(clear).")))
        .pos(Example::in_context("deny", ctx("weather(rain).")))
        .pos(Example::in_context("deny", ctx("weather(clear).")))
        .neg(Example::in_context("allow", ctx("weather(rain).")));
    let h = Learner::new().learn(&task).unwrap();
    assert_eq!(h.cost, 1);
    assert_eq!(h.rules.len(), 1);
    assert_eq!(h.rules[0].0, pid(0));
    assert_eq!(h.rules[0].1.to_string(), ":- weather(rain).");
    assert!(task.violations(&h).unwrap().is_empty());
}

#[test]
fn learned_grammar_generalizes_to_def3_semantics() {
    let task = LearningTask::new(weather_grammar(), weather_space())
        .pos(Example::in_context("allow", ctx("weather(clear).")))
        .neg(Example::in_context("allow", ctx("weather(rain).")));
    let h = Learner::new().learn(&task).unwrap();
    let g = h.apply(&task.grammar);
    assert!(g
        .with_context(&ctx("weather(clear)."))
        .accepts("allow")
        .unwrap());
    assert!(!g
        .with_context(&ctx("weather(rain)."))
        .accepts("allow")
        .unwrap());
    // deny untouched
    assert!(g
        .with_context(&ctx("weather(rain)."))
        .accepts("deny")
        .unwrap());
}

#[test]
fn monotone_and_generic_paths_agree() {
    let task = LearningTask::new(weather_grammar(), weather_space())
        .pos(Example::in_context("allow", ctx("weather(clear).")))
        .pos(Example::in_context("deny", ctx("weather(rain).")))
        .neg(Example::in_context("allow", ctx("weather(rain).")))
        .neg(Example::in_context("deny", ctx("weather(clear).")));
    let fast = Learner::new().learn(&task).unwrap();
    let slow = Learner::with_options(LearnOptions::default().with_force_generic(true))
        .learn(&task)
        .unwrap();
    assert_eq!(fast.cost, slow.cost);
    assert!(task.violations(&fast).unwrap().is_empty());
    assert!(task.violations(&slow).unwrap().is_empty());
}

#[test]
fn unsatisfiable_tasks_are_reported() {
    // The same string in the same context both positive and negative.
    let task = LearningTask::new(weather_grammar(), weather_space())
        .pos(Example::in_context("allow", ctx("weather(rain).")))
        .neg(Example::in_context("allow", ctx("weather(rain).")));
    match Learner::new().learn(&task) {
        Err(LearnError::Unsatisfiable) => {}
        other => panic!("expected Unsatisfiable, got {other:?}"),
    }
}

#[test]
fn noise_is_sacrificed_when_cheaper() {
    // One mislabelled example with a small penalty: the learner should pay
    // it instead of failing.
    let task = LearningTask::new(weather_grammar(), weather_space())
        .pos(Example::in_context("allow", ctx("weather(rain).")).with_penalty(2))
        .neg(Example::in_context("allow", ctx("weather(rain).")))
        .pos(Example::in_context("allow", ctx("weather(clear).")));
    let h = Learner::new().learn(&task).unwrap();
    // `:- weather(rain).` on allow (cost 1) + sacrificed positive (2) = 3.
    assert_eq!(h.cost, 3);
    assert_eq!(h.sacrificed, vec![(true, 0)]);
}

#[test]
fn hard_examples_beat_soft_conflicts() {
    // A soft negative conflicting with a hard positive: sacrifice the soft.
    let task = LearningTask::new(weather_grammar(), weather_space())
        .pos(Example::in_context("allow", ctx("weather(rain).")))
        .neg(Example::in_context("allow", ctx("weather(rain).")).with_penalty(4));
    let h = Learner::new().learn(&task).unwrap();
    assert_eq!(h.cost, 4);
    assert!(h.rules.is_empty());
    assert_eq!(h.sacrificed, vec![(false, 0)]);
}

#[test]
fn minimality_prefers_fewest_literals() {
    // Both a 1-literal and a 2-literal rule would work; the learner must
    // pick the shorter.
    let space = HypothesisSpace::from_texts(&[
        (pid(0), ":- weather(rain), act(allow)."),
        (pid(0), ":- weather(rain)."),
    ]);
    let task = LearningTask::new(weather_grammar(), space)
        .neg(Example::in_context("allow", ctx("weather(rain).")))
        .pos(Example::in_context("allow", ctx("weather(clear).")));
    let h = Learner::new().learn(&task).unwrap();
    assert_eq!(h.cost, 1);
    assert_eq!(h.rules[0].1.to_string(), ":- weather(rain).");
}

#[test]
fn generic_path_learns_normal_rules() {
    // Space contains a normal rule that *enables* acceptance: the start
    // production requires `ok`, and the hypothesis must derive it.
    let g: Asg = r#"
        policy -> "allow" { :- not ok. }
        policy -> "deny"
    "#
    .parse()
    .unwrap();
    let space = HypothesisSpace::from_texts(&[(pid(0), "ok :- sunny."), (pid(0), "ok :- rainy.")]);
    let task = LearningTask::new(g, space)
        .pos(Example::in_context("allow", ctx("sunny.")))
        .neg(Example::in_context("allow", ctx("rainy.")));
    let h = Learner::new().learn(&task).unwrap();
    assert_eq!(h.rules.len(), 1);
    assert_eq!(h.rules[0].1.to_string(), "ok :- sunny.");
    assert!(task.violations(&h).unwrap().is_empty());
}

#[test]
fn annotated_hypothesis_rules_reach_child_atoms() {
    // Grammar with structure: policy -> verb; constraints can inspect @1.
    let g: Asg = r#"
        policy -> verb
        verb -> "allow" { act(allow). }
        verb -> "deny"  { act(deny). }
    "#
    .parse()
    .unwrap();
    let space = HypothesisSpace::from_texts(&[
        (pid(0), ":- act(allow)@1, risky."),
        (pid(0), ":- act(deny)@1, risky."),
    ]);
    let task = LearningTask::new(g, space)
        .neg(Example::in_context("allow", ctx("risky.")))
        .pos(Example::in_context("deny", ctx("risky.")))
        .pos(Example::in_context("allow", ctx("calm.")));
    let h = Learner::new().learn(&task).unwrap();
    assert_eq!(h.rules[0].1.to_string(), ":- act(allow)@1, risky.");
    assert!(task.violations(&h).unwrap().is_empty());
}

#[test]
fn incremental_matches_batch_on_hard_tasks() {
    let mut task = LearningTask::new(weather_grammar(), weather_space());
    // Many redundant examples; only a few are relevant.
    for _ in 0..8 {
        task = task
            .pos(Example::in_context("allow", ctx("weather(clear).")))
            .pos(Example::in_context("deny", ctx("weather(rain).")))
            .neg(Example::in_context("allow", ctx("weather(rain).")));
    }
    let batch = Learner::new().learn(&task).unwrap();
    let (inc, stats) = Learner::new().learn_incremental(&task).unwrap();
    assert_eq!(batch.cost, inc.cost);
    assert!(task.violations(&inc).unwrap().is_empty());
    assert!(stats.relevant < stats.total, "stats: {stats:?}");
    assert!(stats.rounds >= 1);
}

#[test]
fn variables_in_candidates_generalize() {
    // Learn a single rule with a variable instead of two ground rules.
    let g: Asg = r#"
        policy -> "grant" { act(grant). }
    "#
    .parse()
    .unwrap();
    let space = HypothesisSpace::from_texts(&[
        (pid(0), ":- level(V1), V1 < 3."),
        (pid(0), ":- level(1)."),
        (pid(0), ":- level(2)."),
    ]);
    let task = LearningTask::new(g, space)
        .neg(Example::in_context("grant", ctx("level(1).")))
        .neg(Example::in_context("grant", ctx("level(2).")))
        .pos(Example::in_context("grant", ctx("level(3).")));
    let h = Learner::new().learn(&task).unwrap();
    // The variable rule covers both negatives at cost 2, beating 1+1 ground
    // rules only on rule count; costs tie at 2 — either is acceptable, but
    // coverage must be exact.
    assert!(task.violations(&h).unwrap().is_empty());
    assert!(h.cost <= 2);
}

#[test]
fn empty_space_with_consistent_examples() {
    let task = LearningTask::new(weather_grammar(), HypothesisSpace::new())
        .pos(Example::in_context("allow", ctx("weather(clear).")));
    let h = Learner::new().learn(&task).unwrap();
    assert!(h.rules.is_empty());
    assert_eq!(h.cost, 0);
}

#[test]
fn unparseable_positive_is_unsatisfiable() {
    let task =
        LearningTask::new(weather_grammar(), weather_space()).pos(Example::new("no such policy"));
    match Learner::new().learn(&task) {
        Err(LearnError::Unsatisfiable) => {}
        other => panic!("expected Unsatisfiable, got {other:?}"),
    }
}

#[test]
fn unsafe_candidate_is_rejected() {
    let space = HypothesisSpace::from_texts(&[(pid(0), ":- not weather(V1).")]);
    let task = LearningTask::new(weather_grammar(), space)
        .pos(Example::in_context("allow", ctx("weather(clear).")));
    match Learner::new().learn(&task) {
        Err(LearnError::UnsafeCandidate(_)) => {}
        other => panic!("expected UnsafeCandidate, got {other:?}"),
    }
}

#[test]
fn bad_target_is_rejected() {
    let space = HypothesisSpace::from_texts(&[(pid(7), ":- weather(rain).")]);
    let task = LearningTask::new(weather_grammar(), space)
        .pos(Example::in_context("allow", ctx("weather(clear).")));
    match Learner::new().learn(&task) {
        Err(LearnError::BadTarget(7)) => {}
        other => panic!("expected BadTarget, got {other:?}"),
    }
}

#[test]
fn stats_report_the_search_shape() {
    use agenp_learn::Branching;
    let task = LearningTask::new(weather_grammar(), weather_space())
        .pos(Example::in_context("allow", ctx("weather(clear).")))
        .neg(Example::in_context("allow", ctx("weather(rain).")));
    let (h, stats) = Learner::new().learn_with_stats(&task).unwrap();
    assert!(stats.used_monotone);
    assert_eq!(stats.candidates, 4);
    assert_eq!(stats.worlds, 2);
    assert!(stats.search_nodes >= 1);
    assert_eq!(h.cost, 1);
    // Guided and cost-first branching agree on optimal cost.
    let cf = Learner::with_options(LearnOptions::default().with_branching(Branching::CostFirst))
        .learn(&task)
        .unwrap();
    assert_eq!(cf.cost, h.cost);
}

#[test]
fn expired_deadline_aborts_monotone_learning() {
    use agenp_asp::{Deadline, Exhausted};
    let task = LearningTask::new(weather_grammar(), weather_space())
        .pos(Example::in_context("allow", ctx("weather(clear).")))
        .neg(Example::in_context("allow", ctx("weather(rain).")));
    let learner = Learner::with_options(
        LearnOptions::default().with_deadline(Deadline::after(std::time::Duration::ZERO)),
    );
    match learner.learn(&task) {
        Err(LearnError::Exhausted(Exhausted::Deadline)) => {}
        other => panic!("expected Exhausted(Deadline), got {other:?}"),
    }
}

#[test]
fn expired_deadline_aborts_generic_learning() {
    use agenp_asp::{Deadline, Exhausted};
    let task = LearningTask::new(weather_grammar(), weather_space())
        .pos(Example::in_context("allow", ctx("weather(clear).")))
        .neg(Example::in_context("allow", ctx("weather(rain).")));
    let learner = Learner::with_options(
        LearnOptions::default()
            .with_force_generic(true)
            .with_deadline(Deadline::after(std::time::Duration::ZERO)),
    );
    match learner.learn(&task) {
        Err(LearnError::Exhausted(Exhausted::Deadline)) => {}
        other => panic!("expected Exhausted(Deadline), got {other:?}"),
    }
}

#[test]
fn world_cap_falls_back_to_generic_path() {
    use agenp_learn::{CompileOptions, LearnOptions};
    // The base program for `allow` has 4 answer sets (two free choices);
    // with max_worlds = 2 the monotone path is unsound and must be skipped.
    let g: Asg = r#"
        policy -> "allow" {
            x1 :- not y1. y1 :- not x1.
            x2 :- not y2. y2 :- not x2.
            act(allow).
        }
    "#
    .parse()
    .unwrap();
    let space = HypothesisSpace::from_texts(&[(pid(0), ":- storm.")]);
    let task = LearningTask::new(g, space)
        .pos(Example::in_context("allow", ctx("calm.")))
        .neg(Example::in_context("allow", ctx("storm.")));
    let opts = LearnOptions::default().with_compile(
        CompileOptions::default()
            .with_max_trees(4)
            .with_max_worlds(2),
    );
    let (h, stats) = Learner::with_options(opts).learn_with_stats(&task).unwrap();
    assert!(
        !stats.used_monotone,
        "capped worlds must disable the fast path"
    );
    assert_eq!(h.rules[0].1.to_string(), ":- storm.");
    assert!(task.violations(&h).unwrap().is_empty());
}

/// A generic-path task (normal rules in the space) for the evaluation-cache
/// and grounder ablation tests.
fn generic_task() -> LearningTask {
    let g: Asg = r#"
        policy -> "allow" { :- not ok. }
        policy -> "deny"
    "#
    .parse()
    .unwrap();
    // The last candidate targets the `deny` production, which no example
    // parses through: hypothesis subsets that differ only in it project onto
    // the same relevant set per tree, which is what makes the evaluation
    // memo earn hits.
    let space = HypothesisSpace::from_texts(&[
        (pid(0), "ok :- sunny."),
        (pid(0), "ok :- rainy."),
        (pid(1), "aux :- ok."),
    ]);
    LearningTask::new(g, space)
        .pos(Example::in_context("allow", ctx("sunny.")))
        .neg(Example::in_context("allow", ctx("rainy.")))
}

#[test]
fn eval_cache_does_not_change_results() {
    use agenp_learn::CompileOptions;
    let task = generic_task();
    let (with_cache, cached_stats) =
        Learner::with_options(LearnOptions::default().with_force_generic(true))
            .learn_with_stats(&task)
            .unwrap();
    let (without_cache, uncached_stats) = Learner::with_options(
        LearnOptions::default()
            .with_force_generic(true)
            .with_eval_cache(false)
            .with_compile(CompileOptions::default().with_naive_ground(true)),
    )
    .learn_with_stats(&task)
    .unwrap();
    // Identical hypotheses regardless of cache and grounder choice.
    assert_eq!(with_cache.cost, without_cache.cost);
    assert_eq!(
        with_cache.rules[0].1.to_string(),
        without_cache.rules[0].1.to_string()
    );
    assert!(task.violations(&with_cache).unwrap().is_empty());
    assert!(task.violations(&without_cache).unwrap().is_empty());
    // The memo actually fires on the default path and never on the ablation.
    assert!(cached_stats.eval_cache_hits > 0, "stats: {cached_stats:?}");
    assert_eq!(uncached_stats.eval_cache_hits, 0);
    assert!(uncached_stats.eval_cache_misses >= cached_stats.eval_cache_misses);
}

#[test]
fn delta_grounding_instantiates_fewer_rules_than_naive() {
    use agenp_learn::CompileOptions;
    let task = generic_task();
    let (_, fast) = Learner::with_options(LearnOptions::default().with_force_generic(true))
        .learn_with_stats(&task)
        .unwrap();
    let (_, slow) = Learner::with_options(
        LearnOptions::default()
            .with_force_generic(true)
            .with_eval_cache(false)
            .with_compile(CompileOptions::default().with_naive_ground(true)),
    )
    .learn_with_stats(&task)
    .unwrap();
    assert!(
        fast.rules_instantiated < slow.rules_instantiated,
        "delta+cache {} vs naive {}",
        fast.rules_instantiated,
        slow.rules_instantiated
    );
    assert!(fast.solver_calls <= slow.solver_calls);
}

#[test]
fn incremental_uses_grounded_violations_for_normal_rules() {
    // Normal rules in the space disable the world fast path; the incremental
    // driver must still converge via the delta-grounding violation check.
    let task = generic_task();
    let batch = Learner::with_options(LearnOptions::default().with_force_generic(true))
        .learn(&task)
        .unwrap();
    let (inc, stats) = Learner::with_options(LearnOptions::default().with_force_generic(true))
        .learn_incremental(&task)
        .unwrap();
    assert_eq!(batch.cost, inc.cost);
    assert!(task.violations(&inc).unwrap().is_empty());
    assert!(stats.rounds >= 1);
}
