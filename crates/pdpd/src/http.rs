//! A from-scratch HTTP/1.1 message layer on blocking sockets: just enough
//! of RFC 9112 for a keep-alive JSON API — request-line + header parsing,
//! `Content-Length` bodies, persistent connections, and pipelining (the
//! connection buffer preserves bytes beyond the current message, so
//! back-to-back requests written in one burst are served in order).
//! No chunked encoding, no TLS, no HTTP/2: the PDP wire protocol needs
//! none of them, and every byte of this parser is auditable.

use std::io::{ErrorKind, Read, Write};

/// Largest accepted header block (request line + headers + CRLFCRLF).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted body (a `/decide_batch` of thousands of requests fits
/// comfortably; anything bigger is refused with `413`).
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed request.
#[derive(Clone, Debug)]
pub struct HttpRequest {
    /// Method verbatim (`GET`, `POST`, …).
    pub method: String,
    /// Path verbatim, query string included.
    pub path: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response
    /// (HTTP/1.1 semantics: default yes, `Connection: close` opts out;
    /// HTTP/1.0: default no, `keep-alive` opts in).
    pub keep_alive: bool,
}

impl HttpRequest {
    /// First value of header `name` (lower-case), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum HttpError {
    /// The peer closed mid-message or sent bytes that are not HTTP.
    /// Responding `400` and closing is the right reaction.
    Malformed(String),
    /// The head or body exceeded its limit (`431` / `413`).
    TooLarge(&'static str),
    /// The read timed out with the connection still healthy — the caller
    /// may poll a shutdown flag and try again; buffered bytes are kept.
    TimedOut,
    /// Transport failure; close the connection.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TooLarge(what) => write!(f, "{what} too large"),
            HttpError::TimedOut => write!(f, "read timed out"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// A buffered connection reader that survives timeouts and preserves
/// pipelined bytes across messages.
#[derive(Debug)]
pub struct ConnBuf<R> {
    stream: R,
    buf: Vec<u8>,
    /// Bytes before `start` have been consumed by previous messages.
    start: usize,
}

impl<R: Read> ConnBuf<R> {
    /// Wraps `stream` with an empty buffer.
    pub fn new(stream: R) -> ConnBuf<R> {
        ConnBuf {
            stream,
            buf: Vec::with_capacity(4096),
            start: 0,
        }
    }

    /// The unconsumed bytes currently buffered.
    fn pending(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    /// Drops the consumed prefix. Only safe at a message boundary (no
    /// absolute buffer indices may be held across a call).
    fn compact(&mut self) {
        if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }

    /// Reads more bytes from the stream into the buffer. `Ok(0)` is EOF.
    fn fill(&mut self) -> Result<usize, HttpError> {
        let mut chunk = [0u8; 4096];
        match self.stream.read(&mut chunk) {
            Ok(n) => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(n)
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                Err(HttpError::TimedOut)
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => Ok(self.fill()?),
            Err(e) => Err(HttpError::Io(e)),
        }
    }

    /// Reads the next request off the connection. `Ok(None)` is a clean
    /// close (EOF exactly at a message boundary). [`HttpError::TimedOut`]
    /// leaves all buffered bytes intact for a retry.
    pub fn read_request(&mut self) -> Result<Option<HttpRequest>, HttpError> {
        // Keep-alive connections must not grow the buffer without bound.
        self.compact();
        // 1. Accumulate until the blank line ending the head.
        let head_end = loop {
            if let Some(i) = find_head_end(self.pending()) {
                break i;
            }
            if self.pending().len() > MAX_HEAD_BYTES {
                return Err(HttpError::TooLarge("header block"));
            }
            if self.fill()? == 0 {
                if self.pending().is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Malformed("connection closed mid-head".into()));
            }
        };
        let head = match std::str::from_utf8(&self.pending()[..head_end]) {
            Ok(h) => h.to_owned(),
            Err(_) => return Err(HttpError::Malformed("head is not UTF-8".into())),
        };
        let body_start = self.start + head_end + 4; // skip \r\n\r\n

        // 2. Parse request line and headers.
        let mut lines = head.split("\r\n");
        let request_line = lines.next().unwrap_or("");
        let mut parts = request_line.split(' ');
        let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
        {
            (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => {
                (m.to_owned(), p.to_owned(), v)
            }
            _ => {
                return Err(HttpError::Malformed(format!(
                    "bad request line: {request_line:?}"
                )))
            }
        };
        let http11 = match version {
            "HTTP/1.1" => true,
            "HTTP/1.0" => false,
            v => return Err(HttpError::Malformed(format!("unsupported version {v:?}"))),
        };
        let mut headers = Vec::new();
        for line in lines {
            let Some((name, value)) = line.split_once(':') else {
                return Err(HttpError::Malformed(format!("bad header line: {line:?}")));
            };
            if name.is_empty() || name.contains(' ') {
                return Err(HttpError::Malformed(format!("bad header name: {name:?}")));
            }
            headers.push((name.to_ascii_lowercase(), value.trim().to_owned()));
        }

        // 3. Read the body per Content-Length.
        let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
            Some((_, v)) => match v.parse::<usize>() {
                Ok(n) => n,
                Err(_) => return Err(HttpError::Malformed(format!("bad content-length: {v:?}"))),
            },
            None => 0,
        };
        if content_length > MAX_BODY_BYTES {
            return Err(HttpError::TooLarge("body"));
        }
        if headers
            .iter()
            .any(|(k, v)| k == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
        {
            return Err(HttpError::Malformed(
                "transfer-encoding is not supported".into(),
            ));
        }
        while self.buf.len() < body_start + content_length {
            if self.fill()? == 0 {
                return Err(HttpError::Malformed("connection closed mid-body".into()));
            }
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.start = body_start + content_length;

        let connection = headers
            .iter()
            .find(|(k, _)| k == "connection")
            .map(|(_, v)| v.to_ascii_lowercase());
        let keep_alive = match connection.as_deref() {
            Some("close") => false,
            Some("keep-alive") => true,
            _ => http11,
        };
        Ok(Some(HttpRequest {
            method,
            path,
            headers,
            body,
            keep_alive,
        }))
    }

    /// Reads an HTTP *response* (status + body) — the client half of the
    /// protocol, used by the load generator and tests.
    pub fn read_response(&mut self) -> Result<(u16, Vec<u8>), HttpError> {
        self.compact();
        let head_end = loop {
            if let Some(i) = find_head_end(self.pending()) {
                break i;
            }
            if self.pending().len() > MAX_HEAD_BYTES {
                return Err(HttpError::TooLarge("header block"));
            }
            if self.fill()? == 0 {
                return Err(HttpError::Malformed(
                    "connection closed mid-response".into(),
                ));
            }
        };
        let head = match std::str::from_utf8(&self.pending()[..head_end]) {
            Ok(h) => h.to_owned(),
            Err(_) => return Err(HttpError::Malformed("head is not UTF-8".into())),
        };
        let body_start = self.start + head_end + 4;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or("");
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| HttpError::Malformed(format!("bad status line: {status_line:?}")))?;
        let mut content_length = 0usize;
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        HttpError::Malformed(format!("bad content-length: {value:?}"))
                    })?;
                }
            }
        }
        if content_length > MAX_BODY_BYTES {
            return Err(HttpError::TooLarge("body"));
        }
        while self.buf.len() < body_start + content_length {
            if self.fill()? == 0 {
                return Err(HttpError::Malformed("connection closed mid-body".into()));
            }
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.start = body_start + content_length;
        Ok((status, body))
    }

    /// The wrapped stream (e.g. to write on the same socket).
    pub fn stream_mut(&mut self) -> &mut R {
        &mut self.stream
    }
}

/// Index of the `\r\n\r\n` terminating the head, if buffered.
fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Reason phrases for the statuses the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes one response with a `Content-Length` body. `close` adds
/// `Connection: close`.
///
/// # Errors
///
/// Propagates transport write failures.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        reason(status),
        body.len()
    );
    if close {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_a_simple_post() {
        let raw = b"POST /decide HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\n{}";
        let mut conn = ConnBuf::new(Cursor::new(raw.to_vec()));
        let req = conn.read_request().unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/decide");
        assert_eq!(req.body, b"{}");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(req.header("host"), Some("x"));
        assert!(conn.read_request().unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn pipelined_requests_parse_in_order() {
        let raw = b"GET /metrics HTTP/1.1\r\n\r\nPOST /decide HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcdGET /metrics HTTP/1.0\r\n\r\n";
        let mut conn = ConnBuf::new(Cursor::new(raw.to_vec()));
        let a = conn.read_request().unwrap().unwrap();
        assert_eq!((a.method.as_str(), a.path.as_str()), ("GET", "/metrics"));
        let b = conn.read_request().unwrap().unwrap();
        assert_eq!(b.body, b"abcd");
        let c = conn.read_request().unwrap().unwrap();
        assert!(!c.keep_alive, "HTTP/1.0 defaults to close");
        assert!(conn.read_request().unwrap().is_none());
    }

    #[test]
    fn connection_close_is_honored() {
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut conn = ConnBuf::new(Cursor::new(raw.to_vec()));
        assert!(!conn.read_request().unwrap().unwrap().keep_alive);
        let raw = b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        let mut conn = ConnBuf::new(Cursor::new(raw.to_vec()));
        assert!(conn.read_request().unwrap().unwrap().keep_alive);
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for raw in [
            &b"NOT HTTP\r\n\r\n"[..],
            b"GET /x HTTP/2\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbad header\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"GET /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            let mut conn = ConnBuf::new(Cursor::new(raw.to_vec()));
            assert!(
                matches!(conn.read_request(), Err(HttpError::Malformed(_))),
                "{:?} should be malformed",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn truncated_body_is_malformed_not_hang() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc";
        let mut conn = ConnBuf::new(Cursor::new(raw.to_vec()));
        assert!(matches!(conn.read_request(), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn oversized_body_is_too_large() {
        let raw = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        let mut conn = ConnBuf::new(Cursor::new(raw.into_bytes()));
        assert!(matches!(conn.read_request(), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn response_round_trip() {
        let mut out = Vec::new();
        write_response(&mut out, 200, br#"{"ok":true}"#, false).unwrap();
        let mut conn = ConnBuf::new(Cursor::new(out));
        let (status, body) = conn.read_response().unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, br#"{"ok":true}"#);
    }
}
