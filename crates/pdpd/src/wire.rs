//! The PDP wire protocol: JSON shapes for requests and decision outcomes
//! (documented in `docs/SERVING.md`).
//!
//! A request is an object of per-category attribute objects; values may be
//! strings, integers, or booleans — exactly the [`AttrValue`] model:
//!
//! ```json
//! {"subject": {"role": "dba", "age": 30},
//!  "resource": {"type": "internal"},
//!  "action": {"action-id": "read"},
//!  "environment": {"emergency": false}}
//! ```
//!
//! An outcome carries the decision, its obligations and penalty
//! annotation, the PEP enforcement, the serving epoch, cache provenance,
//! and degradation status:
//!
//! ```json
//! {"decision": "Permit", "enforcement": "Granted",
//!  "obligations": [{"id": "audit", "action": "audit-log",
//!                   "deadline": 10, "penalty": 2}],
//!  "penalty": 0, "epoch": 7, "cached": false, "degraded": false}
//! ```

use crate::json::{self, Json};
use agenp_core::arch::DecisionOutcome;
use agenp_policy::{AttrValue, Category, Request};
use std::fmt::Write as _;

/// Decodes the wire form of an access request.
///
/// # Errors
///
/// A message naming the offending member on shape violations.
pub fn request_from_json(value: &Json) -> Result<Request, String> {
    let members = value
        .as_obj()
        .ok_or_else(|| "request must be a JSON object".to_string())?;
    let mut request = Request::new();
    for (key, attrs) in members {
        let category = match key.as_str() {
            "subject" => Category::Subject,
            "resource" => Category::Resource,
            "action" => Category::Action,
            "environment" => Category::Environment,
            other => return Err(format!("unknown attribute category {other:?}")),
        };
        let attrs = attrs
            .as_obj()
            .ok_or_else(|| format!("category {key:?} must be an object"))?;
        for (name, v) in attrs {
            let value: AttrValue = match v {
                Json::Str(s) => s.as_str().into(),
                Json::Int(i) => (*i).into(),
                Json::Bool(b) => (*b).into(),
                other => {
                    return Err(format!(
                        "attribute {key}.{name} must be a string, integer, or boolean \
                         (got {other:?})"
                    ))
                }
            };
            request.set(category, name, value);
        }
    }
    Ok(request)
}

/// Encodes a request in the wire form (the client half).
pub fn request_to_json(request: &Request) -> String {
    let mut out = String::with_capacity(64);
    out.push('{');
    let mut current: Option<Category> = None;
    for (category, name, value) in request.iter() {
        if current != Some(category) {
            if current.is_some() {
                out.push_str("}, ");
            }
            json::push_escaped(&mut out, category.name());
            out.push_str(": {");
            current = Some(category);
        } else {
            out.push_str(", ");
        }
        json::push_escaped(&mut out, name);
        out.push_str(": ");
        match value {
            AttrValue::Str(s) => json::push_escaped(&mut out, s),
            AttrValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            AttrValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
    if current.is_some() {
        out.push('}');
    }
    out.push('}');
    out
}

/// Encodes a decision outcome in the wire form.
pub fn outcome_to_json(outcome: &DecisionOutcome) -> String {
    let mut out = String::with_capacity(96);
    let _ = write!(
        out,
        "{{\"decision\": \"{}\", \"enforcement\": {}, \"obligations\": [",
        outcome.decision,
        match &outcome.enforcement {
            Some(e) => format!("\"{e}\""),
            None => "null".to_string(),
        },
    );
    for (i, ob) in outcome.obligations.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(
            out,
            "{{\"id\": {}, \"action\": {}, \"deadline\": {}, \"penalty\": {}}}",
            json::escaped(&ob.id),
            json::escaped(&ob.action),
            ob.deadline,
            ob.penalty
        );
    }
    let _ = write!(
        out,
        "], \"penalty\": {}, \"epoch\": {}, \"cached\": {}, \"degraded\": {}}}",
        outcome.penalty,
        outcome.epoch,
        outcome.cached,
        outcome.error.is_some()
    );
    out
}

/// Encodes a whole batch: the shared epoch once, then each outcome.
pub fn batch_to_json(outcomes: &[DecisionOutcome]) -> String {
    let mut out = String::with_capacity(64 + 96 * outcomes.len());
    let _ = write!(
        out,
        "{{\"count\": {}, \"epoch\": {}, \"outcomes\": [",
        outcomes.len(),
        // An empty batch has no epoch to report.
        outcomes
            .first()
            .map_or("null".to_string(), |o| o.epoch.to_string())
    );
    for (i, o) in outcomes.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&outcome_to_json(o));
    }
    out.push_str("]}");
    out
}

/// A JSON error body: `{"error": "..."}`.
pub fn error_body(message: &str) -> String {
    format!("{{\"error\": {}}}", json::escaped(message))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_json_round_trips() {
        let request = Request::new()
            .subject("role", "dba")
            .subject("age", 30i64)
            .resource("type", "internal")
            .action("action-id", "read")
            .environment("emergency", true);
        let encoded = request_to_json(&request);
        let decoded = request_from_json(&json::parse(&encoded).unwrap()).unwrap();
        assert_eq!(decoded, request);
        assert_eq!(decoded.canonical_key(), request.canonical_key());
    }

    #[test]
    fn empty_request_round_trips() {
        let encoded = request_to_json(&Request::new());
        assert_eq!(encoded, "{}");
        assert!(request_from_json(&json::parse(&encoded).unwrap())
            .unwrap()
            .is_empty());
    }

    #[test]
    fn outcome_json_carries_obligations_and_penalty() {
        use agenp_policy::{Decision, Enforcement, Obligation};
        let outcome = DecisionOutcome {
            decision: Decision::Permit,
            obligations: vec![
                Obligation::new("audit", "audit-log", 10).with_penalty(2),
                Obligation::new("notify", "notify-owner", 5),
            ],
            penalty: 0,
            enforcement: Some(Enforcement::Granted),
            error: None,
            epoch: 7,
            cached: false,
        };
        let encoded = outcome_to_json(&outcome);
        let v = json::parse(&encoded).unwrap();
        let obj = v.as_obj().unwrap();
        let obligations = obj
            .iter()
            .find(|(k, _)| k == "obligations")
            .and_then(|(_, v)| v.as_arr())
            .unwrap();
        assert_eq!(obligations.len(), 2);
        let first = obligations[0].as_obj().unwrap();
        let field = |name: &str| {
            first
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v.clone())
        };
        assert_eq!(field("id"), Some(Json::Str("audit".into())));
        assert_eq!(field("action"), Some(Json::Str("audit-log".into())));
        assert_eq!(field("deadline"), Some(Json::Int(10)));
        assert_eq!(field("penalty"), Some(Json::Int(2)));
        assert!(encoded.contains("\"penalty\": 0, \"epoch\": 7"));
        // An annotation-free outcome keeps the fields, empty/zero.
        let bare = DecisionOutcome {
            decision: Decision::Deny,
            obligations: vec![],
            penalty: 4,
            enforcement: Some(Enforcement::Blocked),
            error: None,
            epoch: 7,
            cached: true,
        };
        let bare_json = outcome_to_json(&bare);
        assert!(bare_json.contains("\"obligations\": []"));
        assert!(bare_json.contains("\"penalty\": 4"));
        json::parse(&bare_json).unwrap();
    }

    #[test]
    fn bad_shapes_are_rejected() {
        for bad in [
            "[1]",
            "{\"unknown\": {}}",
            "{\"subject\": 3}",
            "{\"subject\": {\"role\": [1]}}",
            "{\"subject\": {\"role\": 2.5}}",
        ] {
            let v = json::parse(bad).unwrap();
            assert!(request_from_json(&v).is_err(), "{bad} should be rejected");
        }
    }
}
