//! `pdpd` — the standalone PDP daemon and its load client.
//!
//! ```text
//! pdpd serve [--addr HOST:PORT] [--threads N] [--obs]
//! pdpd load  [--addr HOST:PORT] [--connections N] [--requests N]
//!            [--batch N] [--smoke]
//! ```
//!
//! `serve` publishes the XACML scenario's ground-truth policy into a
//! [`PdpHandle`] and serves it over HTTP/1.1 until killed. `load` drives
//! a randomized request mix against a running daemon, prints throughput
//! and latency percentiles, and — with `--smoke` — exits nonzero unless
//! the run is clean (zero parity mismatches, zero stale epochs, zero
//! HTTP errors) and sustains at least 10k decisions/sec.

use agenp_core::arch::PdpHandle;
use agenp_core::arch::{DecisionSnapshot, PdpPin};
use agenp_core::scenarios::xacml::{ground_truth_policy, XacmlRequest};
use agenp_pdpd::{run_load, LoadOptions, PdpdServer, ServerOptions};
use agenp_policy::{CombiningAlg, Decision, Request};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::SocketAddr;
use std::process::ExitCode;

/// The single-connection floor `load --smoke` enforces, decisions/sec.
const SMOKE_MIN_THROUGHPUT: f64 = 10_000.0;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("load") => cmd_load(&args[1..]),
        _ => {
            eprintln!(
                "usage: pdpd serve [--addr HOST:PORT] [--threads N] [--obs]\n\
                 \x20      pdpd load  [--addr HOST:PORT] [--connections N] \
                 [--requests N] [--batch N] [--smoke]"
            );
            ExitCode::from(2)
        }
    }
}

/// Parses `--flag VALUE` out of `args`.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn flag_present(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn parse_usize(args: &[String], flag: &str, default: usize) -> usize {
    flag_value(args, flag).map_or(default, |v| v.parse().unwrap_or(default))
}

/// A handle pre-loaded with the XACML ground-truth policy — the same
/// snapshot the bench harness serves.
fn scenario_handle() -> PdpHandle {
    let handle = PdpHandle::new();
    handle.publish(DecisionSnapshot::new(
        vec![ground_truth_policy()],
        CombiningAlg::DenyOverrides,
    ));
    handle
}

fn cmd_serve(args: &[String]) -> ExitCode {
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:7465");
    let mut options = ServerOptions::default();
    if let Some(threads) = flag_value(args, "--threads").and_then(|v| v.parse().ok()) {
        options.threads = threads;
    }
    if flag_present(args, "--obs") {
        agenp_obs::install(agenp_obs::ObsConfig::enabled());
    }
    let mut server = match PdpdServer::bind(addr, scenario_handle(), options) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pdpd: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("pdpd: serving on http://{}", server.addr());
    server.join(); // runs until the process is killed
    ExitCode::SUCCESS
}

fn cmd_load(args: &[String]) -> ExitCode {
    let addr_text = flag_value(args, "--addr").unwrap_or("127.0.0.1:7465");
    let addr: SocketAddr = match addr_text.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pdpd: bad --addr {addr_text}: {e}");
            return ExitCode::from(2);
        }
    };
    let smoke = flag_present(args, "--smoke");
    let mut options = LoadOptions {
        connections: parse_usize(args, "--connections", if smoke { 1 } else { 4 }),
        requests: parse_usize(args, "--requests", if smoke { 30_000 } else { 100_000 }),
        batch: parse_usize(args, "--batch", 1),
        ..LoadOptions::default()
    };
    if smoke {
        // The smoke floor is a single-connection number; pin it there.
        options.connections = 1;
    }

    let (workload, expected) = scenario_workload(128, 42);
    let report = match run_load(addr, &workload, &expected, &options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pdpd: load run failed against {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "pdpd load: {} decisions over {} connection(s) in {:.2}s — {:.0} dec/s",
        report.decisions, report.connections, report.elapsed_secs, report.throughput
    );
    println!(
        "latency: p50 {}us p90 {}us p99 {}us max {}us",
        report.p50_ns / 1000,
        report.p90_ns / 1000,
        report.p99_ns / 1000,
        report.max_ns / 1000
    );
    println!(
        "checks: {} parity mismatches, {} stale epochs, {} http errors",
        report.parity_mismatches, report.stale_epochs, report.http_errors
    );

    if smoke {
        if !report.is_clean() {
            eprintln!("pdpd: smoke gate failed — run was not clean");
            return ExitCode::FAILURE;
        }
        if report.throughput < SMOKE_MIN_THROUGHPUT {
            eprintln!(
                "pdpd: smoke gate failed — {:.0} dec/s is below the \
                 {SMOKE_MIN_THROUGHPUT:.0} dec/s single-connection floor",
                report.throughput
            );
            return ExitCode::FAILURE;
        }
        println!("pdpd: smoke gates passed");
    }
    ExitCode::SUCCESS
}

/// A seeded randomized request mix plus its oracle decisions, computed
/// through a local pin over the same snapshot the daemon serves.
fn scenario_workload(distinct: usize, seed: u64) -> (Vec<Request>, Vec<Decision>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let workload: Vec<Request> = (0..distinct)
        .map(|_| XacmlRequest::random(&mut rng).to_request())
        .collect();
    let handle = scenario_handle();
    let mut pin: PdpPin = handle.pin();
    let expected = workload.iter().map(|r| pin.decide(r).decision).collect();
    (workload, expected)
}
