//! The serving loop: a blocking `TcpListener` accept thread feeding a
//! fixed worker pool over an mpsc channel (the `crates/asp/src/pool.rs`
//! idiom: plain `std::thread` + channels, deterministic shutdown, no
//! external runtime). Each worker owns a [`PdpPin`], so every connection
//! it serves decides through a per-thread epoch-stamped cache — the HTTP
//! tier inherits the lock-free warm path for free.

use crate::http::{write_response, ConnBuf, HttpError, HttpRequest};
use crate::json;
use crate::wire;
use agenp_core::arch::{PdpHandle, PdpPin, ServeStats};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerOptions {
    /// Worker threads serving connections (minimum 1).
    pub threads: usize,
    /// Socket read timeout; bounds how long shutdown can lag.
    pub read_timeout: Duration,
}

impl Default for ServerOptions {
    fn default() -> ServerOptions {
        ServerOptions {
            threads: std::thread::available_parallelism().map_or(2, usize::from),
            read_timeout: Duration::from_millis(200),
        }
    }
}

/// Monotone counters for one running server.
#[derive(Clone, Copy, Debug, Default)]
pub struct HttpStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests answered `2xx`.
    pub ok: u64,
    /// Requests refused `4xx`.
    pub client_errors: u64,
    /// Decisions rendered over HTTP (batch requests count each element).
    pub decisions: u64,
}

#[derive(Default, Debug)]
struct HttpCounters {
    connections: AtomicU64,
    ok: AtomicU64,
    client_errors: AtomicU64,
    decisions: AtomicU64,
}

/// A running PDP daemon. Dropping it (or calling
/// [`PdpdServer::shutdown`]) stops the accept loop, drains the workers,
/// and joins every thread.
#[derive(Debug)]
pub struct PdpdServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    counters: Arc<HttpCounters>,
    handle: PdpHandle,
}

impl PdpdServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// serving `handle`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from bind/configure.
    pub fn bind(
        addr: impl ToSocketAddrs,
        handle: PdpHandle,
        options: ServerOptions,
    ) -> io::Result<PdpdServer> {
        let listener = TcpListener::bind(addr)?;
        PdpdServer::serve(listener, handle, options)
    }

    /// Starts serving on an already-bound listener.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from local-address lookup.
    pub fn serve(
        listener: TcpListener,
        handle: PdpHandle,
        options: ServerOptions,
    ) -> io::Result<PdpdServer> {
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(HttpCounters::default());
        let threads = options.threads.max(1);
        let (tx, rx) = channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let rx = Arc::clone(&rx);
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            let pin = handle.pin();
            let timeout = options.read_timeout;
            workers.push(std::thread::spawn(move || {
                worker_loop(&rx, &shutdown, &counters, pin, timeout);
            }));
        }

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let counters = Arc::clone(&counters);
            std::thread::spawn(move || accept_loop(&listener, &tx, &shutdown, &counters))
        };

        Ok(PdpdServer {
            addr,
            shutdown,
            accept: Some(accept),
            workers,
            counters,
            handle,
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The serving handle (e.g. to publish new snapshots while serving).
    pub fn handle(&self) -> &PdpHandle {
        &self.handle
    }

    /// HTTP-level counters.
    pub fn http_stats(&self) -> HttpStats {
        HttpStats {
            connections: self.counters.connections.load(Ordering::Relaxed),
            ok: self.counters.ok.load(Ordering::Relaxed),
            client_errors: self.counters.client_errors.load(Ordering::Relaxed),
            decisions: self.counters.decisions.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, drains in-flight connections, joins all threads.
    /// Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }

    /// Blocks until the server is shut down from another thread (the
    /// standalone daemon's main thread parks here).
    pub fn join(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for PdpdServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: &TcpListener,
    tx: &Sender<TcpStream>,
    shutdown: &AtomicBool,
    counters: &HttpCounters,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                counters.connections.fetch_add(1, Ordering::Relaxed);
                if tx.send(stream).is_err() {
                    return; // every worker is gone
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    // Dropping `tx` here closes the channel; workers drain and exit.
}

fn worker_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    shutdown: &AtomicBool,
    counters: &HttpCounters,
    mut pin: PdpPin,
    timeout: Duration,
) {
    loop {
        // Take the next connection; recv_timeout so shutdown is noticed
        // even when the accept loop is idle.
        let stream = {
            let guard = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            match guard.recv_timeout(Duration::from_millis(100)) {
                Ok(s) => s,
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    continue;
                }
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
            }
        };
        let _ = stream.set_read_timeout(Some(timeout));
        let _ = stream.set_nodelay(true);
        serve_connection(stream, shutdown, counters, &mut pin);
    }
}

/// Serves one connection until close, error, or shutdown.
fn serve_connection(
    stream: TcpStream,
    shutdown: &AtomicBool,
    counters: &HttpCounters,
    pin: &mut PdpPin,
) {
    let write_half = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut write_half = write_half;
    let mut conn = ConnBuf::new(stream);
    loop {
        let request = match conn.read_request() {
            Ok(Some(r)) => r,
            Ok(None) => return, // clean close
            Err(HttpError::TimedOut) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(HttpError::Malformed(msg)) => {
                counters.client_errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_response(
                    &mut write_half,
                    400,
                    wire::error_body(&msg).as_bytes(),
                    true,
                );
                return;
            }
            Err(HttpError::TooLarge(what)) => {
                counters.client_errors.fetch_add(1, Ordering::Relaxed);
                let status = if what == "body" { 413 } else { 431 };
                let _ = write_response(
                    &mut write_half,
                    status,
                    wire::error_body(&format!("{what} too large")).as_bytes(),
                    true,
                );
                return;
            }
            Err(HttpError::Io(_)) => return,
        };
        let keep_alive = request.keep_alive;
        let (status, body) = route(pin, counters, &request);
        if status < 400 {
            counters.ok.fetch_add(1, Ordering::Relaxed);
        } else {
            counters.client_errors.fetch_add(1, Ordering::Relaxed);
        }
        if write_response(&mut write_half, status, body.as_bytes(), !keep_alive).is_err() {
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

/// Dispatches one request to its endpoint. Returns `(status, JSON body)`.
fn route(pin: &mut PdpPin, counters: &HttpCounters, request: &HttpRequest) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/decide") => match parse_body(&request.body).and_then(|v| {
            wire::request_from_json(&v).map_err(|e| format!("bad request shape: {e}"))
        }) {
            Ok(req) => {
                let outcome = pin.decide(&req);
                counters.decisions.fetch_add(1, Ordering::Relaxed);
                (200, wire::outcome_to_json(&outcome))
            }
            Err(msg) => (400, wire::error_body(&msg)),
        },
        ("POST", "/decide_batch") => match parse_batch_body(&request.body) {
            Ok(reqs) => {
                let outcomes = pin.decide_batch(&reqs);
                counters
                    .decisions
                    .fetch_add(outcomes.len() as u64, Ordering::Relaxed);
                (200, wire::batch_to_json(&outcomes))
            }
            Err(msg) => (400, wire::error_body(&msg)),
        },
        ("GET", "/metrics") => (200, metrics_body(pin.handle().stats(), counters)),
        ("GET", "/healthz") => (200, "{\"ok\": true}".to_string()),
        ("POST" | "GET", "/decide" | "/decide_batch" | "/metrics" | "/healthz") => (
            405,
            wire::error_body(&format!(
                "method {} not allowed on {}",
                request.method, request.path
            )),
        ),
        _ => (404, wire::error_body(&format!("no route {}", request.path))),
    }
}

fn parse_body(body: &[u8]) -> Result<json::Json, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    json::parse(text).map_err(|e| format!("bad JSON: {e}"))
}

fn parse_batch_body(body: &[u8]) -> Result<Vec<agenp_policy::Request>, String> {
    let value = parse_body(body)?;
    let items = value
        .get("requests")
        .and_then(json::Json::as_arr)
        .ok_or_else(|| "body must be {\"requests\": [...]}".to_string())?;
    items
        .iter()
        .enumerate()
        .map(|(i, v)| {
            wire::request_from_json(v).map_err(|e| format!("bad request at index {i}: {e}"))
        })
        .collect()
}

/// The obs-backed `/metrics` document: per-handle serve stats, HTTP-level
/// counters, and (when telemetry is enabled) the full `agenp-obs` dump.
fn metrics_body(serve: ServeStats, counters: &HttpCounters) -> String {
    let obs = if agenp_obs::enabled() {
        agenp_obs::snapshot("pdpd.metrics").to_json()
    } else {
        "null".to_string()
    };
    format!(
        "{{\"serve\": {{\"decisions\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
         \"invalidations\": {}, \"publishes\": {}, \"hit_rate\": {:.4}}}, \
         \"http\": {{\"connections\": {}, \"ok\": {}, \"client_errors\": {}, \
         \"decisions\": {}}}, \"obs\": {}}}",
        serve.decisions,
        serve.cache_hits,
        serve.cache_misses,
        serve.invalidations,
        serve.publishes,
        serve.hit_rate(),
        counters.connections.load(Ordering::Relaxed),
        counters.ok.load(Ordering::Relaxed),
        counters.client_errors.load(Ordering::Relaxed),
        counters.decisions.load(Ordering::Relaxed),
        obs
    )
}
