//! A minimal value-producing JSON parser and encoder for the wire
//! protocol, hand-rolled against RFC 8259 in the same spirit as the
//! validating parser in `agenp_bench::json` (the workspace deliberately
//! carries no JSON dependency). Integers that fit `i64` are kept exact;
//! other numbers fall back to `f64`.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fraction/exponent that fits `i64`.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member of an object by key, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string inside, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer inside, if any.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The boolean inside, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// A parse failure, with the byte position it was detected at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.pos)
    }
}

impl std::error::Error for JsonError {}

fn err<T>(pos: usize, msg: impl Into<String>) -> Result<T, JsonError> {
    Err(JsonError {
        pos,
        msg: msg.into(),
    })
}

/// Parses `input` as exactly one JSON value with nothing trailing.
///
/// # Errors
///
/// [`JsonError`] naming the offending byte position.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return err(pos, "trailing content");
    }
    Ok(value)
}

/// Nesting cap: a hostile request must not be able to blow the stack.
const MAX_DEPTH: usize = 64;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return err(*pos, "nesting too deep");
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, b"false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, b"null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => err(*pos, "unexpected end of input"),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return err(*pos, "expected ':'");
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return err(*pos, "expected ',' or '}'"),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return err(*pos, "expected ',' or ']'"),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return err(*pos, "expected string");
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = parse_hex4(bytes, pos)?;
                        if (0xD800..=0xDBFF).contains(&cp) {
                            // A surrogate pair: the low half must follow.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return err(*pos, "unpaired surrogate");
                            }
                            *pos += 2;
                            let low = parse_hex4(bytes, pos)?;
                            if !(0xDC00..=0xDFFF).contains(&low) {
                                return err(*pos, "bad low surrogate");
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            out.push(char::from_u32(c).ok_or(JsonError {
                                pos: *pos,
                                msg: "bad surrogate pair".into(),
                            })?);
                        } else if (0xDC00..=0xDFFF).contains(&cp) {
                            return err(*pos, "unpaired low surrogate");
                        } else {
                            out.push(char::from_u32(cp).ok_or(JsonError {
                                pos: *pos,
                                msg: "bad \\u escape".into(),
                            })?);
                        }
                    }
                    _ => return err(*pos, "bad escape"),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x20 => return err(*pos, "raw control character"),
            Some(_) => {
                // Copy one UTF-8 scalar (input is a &str, so boundaries are
                // valid by construction).
                let start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0b1100_0000 == 0b1000_0000 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&bytes[start..*pos]).expect("input is UTF-8"));
            }
            None => return err(*pos, "unterminated string"),
        }
    }
}

/// Parses the 4 hex digits after `\u`, leaving `pos` on the last digit.
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    let mut cp = 0u32;
    for _ in 0..4 {
        *pos += 1;
        let d = match bytes.get(*pos) {
            Some(&b) if b.is_ascii_digit() => u32::from(b - b'0'),
            Some(&b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
            Some(&b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
            _ => return err(*pos, "bad \\u escape"),
        };
        cp = cp * 16 + d;
    }
    Ok(cp)
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &[u8],
    value: Json,
) -> Result<Json, JsonError> {
    if bytes.len() >= *pos + lit.len() && &bytes[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(value)
    } else {
        err(*pos, "bad literal")
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
        *pos += 1;
        digits += 1;
    }
    if digits == 0 {
        return err(start, "expected number");
    }
    let mut integral = true;
    if bytes.get(*pos) == Some(&b'.') {
        integral = false;
        *pos += 1;
        let mut frac = 0;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
            frac += 1;
        }
        if frac == 0 {
            return err(*pos, "bad fraction");
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        integral = false;
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let mut exp = 0;
        while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
            exp += 1;
        }
        if exp == 0 {
            return err(*pos, "bad exponent");
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    if integral {
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::Int(i));
        }
    }
    match text.parse::<f64>() {
        Ok(f) => Ok(Json::Num(f)),
        Err(_) => err(start, "unrepresentable number"),
    }
}

/// Appends `s` to `out` as a JSON string literal (quoted, escaped).
pub fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `s` as a standalone JSON string literal.
pub fn escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    push_escaped(&mut out, s);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structures() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(parse("2.5").unwrap(), Json::Num(2.5));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        let v = parse(r#"{"xs": [1, 2], "ok": true}"#).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("xs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn decodes_unicode_escapes() {
        assert_eq!(parse(r#""A""#).unwrap(), Json::Str("A".into()));
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("\u{1F600}".into()));
        assert!(parse(r#""\ud83d""#).is_err()); // unpaired high surrogate
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "1 2", "{'a': 1}", "nul"] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn rejects_hostile_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn escaping_round_trips() {
        let original = "line\n\"quoted\"\ttab\\slash\u{1}";
        let encoded = escaped(original);
        assert_eq!(parse(&encoded).unwrap(), Json::Str(original.into()));
    }
}
