//! A from-scratch HTTP load client for the PDP daemon: N keep-alive
//! connections driven by N threads, each replaying a pre-serialized
//! request mix and recording per-request latency. The client doubles as
//! a correctness probe — every response is decoded and checked against
//! the expected decision, and epochs are checked for staleness — so a
//! load run that passes its gates is also a differential test of the
//! whole wire path.

use crate::http::ConnBuf;
use crate::json::{self, Json};
use crate::wire;
use agenp_policy::{Decision, Request};
use std::io::{self, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// Load-run configuration.
#[derive(Clone, Debug)]
pub struct LoadOptions {
    /// Concurrent keep-alive connections (one thread each).
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// When `> 1`, requests are sent as `/decide_batch` bodies of this
    /// many elements instead of single `/decide` calls.
    pub batch: usize,
    /// Socket read timeout per response.
    pub read_timeout: Duration,
}

impl Default for LoadOptions {
    fn default() -> LoadOptions {
        LoadOptions {
            connections: 4,
            requests: 40_000,
            batch: 1,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// One load run's outcome: throughput, latency percentiles, and the
/// correctness tallies that the smoke gates check.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Connections used.
    pub connections: usize,
    /// Decisions received (batch elements count individually).
    pub decisions: u64,
    /// Wall-clock seconds for the whole run.
    pub elapsed_secs: f64,
    /// Decisions per second across all connections.
    pub throughput: f64,
    /// Median request latency, nanoseconds.
    pub p50_ns: u64,
    /// 90th-percentile request latency, nanoseconds.
    pub p90_ns: u64,
    /// 99th-percentile request latency, nanoseconds.
    pub p99_ns: u64,
    /// Worst request latency, nanoseconds.
    pub max_ns: u64,
    /// Responses whose decision differed from the oracle.
    pub parity_mismatches: u64,
    /// Responses carrying an epoch older than one already observed on
    /// the same connection (must be zero: epochs are monotone).
    pub stale_epochs: u64,
    /// Non-200 responses.
    pub http_errors: u64,
}

impl LoadReport {
    /// True when the run proves the wire path: no mismatches, no stale
    /// epochs, no HTTP errors, and at least one decision.
    pub fn is_clean(&self) -> bool {
        self.decisions > 0
            && self.parity_mismatches == 0
            && self.stale_epochs == 0
            && self.http_errors == 0
    }
}

/// One pre-serialized unit of work: the HTTP payload plus the decisions
/// the oracle expects back (one per batch element).
struct Shot {
    payload: Vec<u8>,
    expected: Vec<Decision>,
}

struct ConnTally {
    latencies_ns: Vec<u64>,
    decisions: u64,
    parity_mismatches: u64,
    stale_epochs: u64,
    http_errors: u64,
}

/// Drives `options.requests` decisions against `addr`, spread over
/// `options.connections` keep-alive connections. `workload` supplies the
/// request mix; `expected[i]` is the oracle decision for `workload[i]`.
///
/// # Errors
///
/// Propagates connect failures; per-request I/O errors are tallied as
/// `http_errors` instead of aborting the run.
///
/// # Panics
///
/// Panics if `workload` is empty or `workload.len() != expected.len()`.
pub fn run_load(
    addr: SocketAddr,
    workload: &[Request],
    expected: &[Decision],
    options: &LoadOptions,
) -> io::Result<LoadReport> {
    assert!(!workload.is_empty(), "load workload must be non-empty");
    assert_eq!(workload.len(), expected.len());
    let connections = options.connections.max(1);
    let batch = options.batch.max(1);
    let shots = build_shots(workload, expected, batch);
    let per_conn = options.requests.div_ceil(batch).div_ceil(connections);

    let started = Instant::now();
    let mut tallies: Vec<io::Result<ConnTally>> = Vec::with_capacity(connections);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(connections);
        for conn_id in 0..connections {
            let shots = &shots;
            handles.push(scope.spawn(move || {
                drive_connection(addr, shots, conn_id, per_conn, options.read_timeout)
            }));
        }
        for handle in handles {
            tallies.push(handle.join().expect("load connection thread panicked"));
        }
    });

    let elapsed = started.elapsed();
    let mut latencies: Vec<u64> = Vec::new();
    let mut report = LoadReport {
        connections,
        decisions: 0,
        elapsed_secs: elapsed.as_secs_f64(),
        throughput: 0.0,
        p50_ns: 0,
        p90_ns: 0,
        p99_ns: 0,
        max_ns: 0,
        parity_mismatches: 0,
        stale_epochs: 0,
        http_errors: 0,
    };
    for tally in tallies {
        let tally = tally?;
        report.decisions += tally.decisions;
        report.parity_mismatches += tally.parity_mismatches;
        report.stale_epochs += tally.stale_epochs;
        report.http_errors += tally.http_errors;
        latencies.extend(tally.latencies_ns);
    }
    latencies.sort_unstable();
    report.p50_ns = percentile(&latencies, 50.0);
    report.p90_ns = percentile(&latencies, 90.0);
    report.p99_ns = percentile(&latencies, 99.0);
    report.max_ns = latencies.last().copied().unwrap_or(0);
    if report.elapsed_secs > 0.0 {
        #[allow(clippy::cast_precision_loss)]
        {
            report.throughput = report.decisions as f64 / report.elapsed_secs;
        }
    }
    Ok(report)
}

/// Pre-serializes the workload so the hot loop only writes bytes.
fn build_shots(workload: &[Request], expected: &[Decision], batch: usize) -> Vec<Shot> {
    let mut shots = Vec::with_capacity(workload.len().div_ceil(batch));
    for chunk_start in (0..workload.len()).step_by(batch) {
        let chunk = &workload[chunk_start..(chunk_start + batch).min(workload.len())];
        let chunk_expected = &expected[chunk_start..(chunk_start + batch).min(expected.len())];
        let (path, body) = if batch == 1 {
            ("/decide", wire::request_to_json(&chunk[0]))
        } else {
            let mut body = String::from("{\"requests\": [");
            for (i, r) in chunk.iter().enumerate() {
                if i > 0 {
                    body.push_str(", ");
                }
                body.push_str(&wire::request_to_json(r));
            }
            body.push_str("]}");
            ("/decide_batch", body)
        };
        let payload = format!(
            "POST {path} HTTP/1.1\r\nHost: pdpd\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .into_bytes();
        shots.push(Shot {
            payload,
            expected: chunk_expected.to_vec(),
        });
    }
    shots
}

/// One connection's worth of the run: `count` shots round-robined from
/// the shared shot table, offset by `conn_id` so connections interleave
/// different requests.
fn drive_connection(
    addr: SocketAddr,
    shots: &[Shot],
    conn_id: usize,
    count: usize,
    read_timeout: Duration,
) -> io::Result<ConnTally> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(read_timeout))?;
    stream.set_nodelay(true)?;
    let mut write_half = stream.try_clone()?;
    let mut conn = ConnBuf::new(stream);
    let mut tally = ConnTally {
        latencies_ns: Vec::with_capacity(count),
        decisions: 0,
        parity_mismatches: 0,
        stale_epochs: 0,
        http_errors: 0,
    };
    let mut last_epoch: u64 = 0;
    for i in 0..count {
        let shot = &shots[(conn_id + i * 7) % shots.len()];
        let started = Instant::now();
        if write_half.write_all(&shot.payload).is_err() {
            tally.http_errors += 1;
            break;
        }
        let (status, body) = match conn.read_response() {
            Ok(r) => r,
            Err(_) => {
                tally.http_errors += 1;
                break;
            }
        };
        let nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        tally.latencies_ns.push(nanos);
        if status != 200 {
            tally.http_errors += 1;
            continue;
        }
        check_response(&body, &shot.expected, &mut last_epoch, &mut tally);
    }
    Ok(tally)
}

/// Decodes one response body and scores it against the oracle.
fn check_response(body: &[u8], expected: &[Decision], last_epoch: &mut u64, tally: &mut ConnTally) {
    let Ok(text) = std::str::from_utf8(body) else {
        tally.http_errors += 1;
        return;
    };
    let Ok(value) = json::parse(text) else {
        tally.http_errors += 1;
        return;
    };
    // Single outcome or batch envelope.
    let outcomes: Vec<&Json> = if let Some(arr) = value.get("outcomes").and_then(Json::as_arr) {
        arr.iter().collect()
    } else {
        vec![&value]
    };
    if outcomes.len() != expected.len() {
        tally.parity_mismatches += expected.len() as u64;
        return;
    }
    for (outcome, want) in outcomes.iter().zip(expected) {
        tally.decisions += 1;
        let got = outcome.get("decision").and_then(Json::as_str);
        if got != Some(&want.to_string()) {
            tally.parity_mismatches += 1;
        }
        if let Some(epoch) = outcome
            .get("epoch")
            .and_then(Json::as_i64)
            .and_then(|e| u64::try_from(e).ok())
        {
            // Epochs never move backwards on a single connection.
            if epoch < *last_epoch {
                tally.stale_epochs += 1;
            }
            *last_epoch = (*last_epoch).max(epoch);
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted sample.
fn percentile(sorted: &[u64], pct: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    #[allow(
        clippy::cast_precision_loss,
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss
    )]
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 90.0), 90);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn shots_chunk_the_workload() {
        let workload: Vec<Request> = (0..5)
            .map(|i| Request::new().subject("n", i64::from(i)))
            .collect();
        let expected = vec![Decision::Permit; 5];
        let shots = build_shots(&workload, &expected, 2);
        assert_eq!(shots.len(), 3);
        assert_eq!(shots[0].expected.len(), 2);
        assert_eq!(shots[2].expected.len(), 1);
        assert!(shots[1].payload.starts_with(b"POST /decide_batch HTTP/1.1"));
        let single = build_shots(&workload, &expected, 1);
        assert_eq!(single.len(), 5);
        assert!(single[0].payload.starts_with(b"POST /decide HTTP/1.1"));
    }
}
