//! `agenp-pdpd` — the PDP on the wire.
//!
//! A from-scratch HTTP/1.1 serving tier over the shared-snapshot PDP:
//! no external dependencies, blocking `std::net` sockets, a fixed worker
//! pool where each worker owns a [`agenp_core::arch::PdpPin`] (the
//! per-thread epoch-stamped decision cache), keep-alive and pipelining,
//! and a built-in load client that doubles as a wire-path differential
//! test. Protocol shapes are documented in `docs/SERVING.md`.
//!
//! - `POST /decide` — one access request in, one decision outcome out.
//! - `POST /decide_batch` — `{"requests": [...]}` in, a batch envelope
//!   out; all outcomes share one snapshot epoch (never torn).
//! - `GET /metrics` — serve stats, HTTP counters, and the `agenp-obs`
//!   dump when telemetry is enabled.
//! - `GET /healthz` — liveness.

pub mod client;
pub mod http;
pub mod json;
pub mod server;
pub mod wire;

pub use client::{run_load, LoadOptions, LoadReport};
pub use server::{HttpStats, PdpdServer, ServerOptions};
