//! End-to-end tests over a real loopback socket: boot a [`PdpdServer`]
//! on an ephemeral port, then exercise the wire protocol exactly as an
//! external client would — keep-alive reuse, pipelined requests,
//! batches, malformed payloads, and the load client's parity checks.

use agenp_core::arch::{DecisionSnapshot, PdpHandle};
use agenp_core::scenarios::xacml::{ground_truth_policy, XacmlRequest};
use agenp_pdpd::http::ConnBuf;
use agenp_pdpd::json::{self, Json};
use agenp_pdpd::{run_load, wire, LoadOptions, PdpdServer, ServerOptions};
use agenp_policy::{CombiningAlg, Decision, Request};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;

fn scenario_handle() -> PdpHandle {
    let handle = PdpHandle::new();
    handle.publish(DecisionSnapshot::new(
        vec![ground_truth_policy()],
        CombiningAlg::DenyOverrides,
    ));
    handle
}

fn boot(threads: usize) -> PdpdServer {
    PdpdServer::bind(
        "127.0.0.1:0",
        scenario_handle(),
        ServerOptions {
            threads,
            read_timeout: Duration::from_millis(50),
        },
    )
    .expect("bind ephemeral port")
}

/// Opens a client connection with a response timeout.
fn connect(server: &PdpdServer) -> (TcpStream, ConnBuf<TcpStream>) {
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let read_half = stream.try_clone().unwrap();
    (stream, ConnBuf::new(read_half))
}

fn post(path: &str, body: &str) -> Vec<u8> {
    format!(
        "POST {path} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn sample_request() -> Request {
    XacmlRequest::random(&mut StdRng::seed_from_u64(5)).to_request()
}

#[test]
fn decide_round_trips_over_keep_alive() {
    let mut server = boot(2);
    let request = sample_request();
    let expected = server.handle().decide(&request).decision;
    let body = wire::request_to_json(&request);

    let (mut tx, mut rx) = connect(&server);
    // Three requests on one connection: keep-alive must hold.
    for _ in 0..3 {
        tx.write_all(&post("/decide", &body)).unwrap();
        let (status, resp) = rx.read_response().expect("response");
        assert_eq!(status, 200);
        let value = json::parse(std::str::from_utf8(&resp).unwrap()).unwrap();
        assert_eq!(
            value.get("decision").and_then(Json::as_str),
            Some(expected.to_string().as_str())
        );
        assert_eq!(value.get("degraded").and_then(Json::as_bool), Some(false));
    }
    server.shutdown();
}

#[test]
fn pipelined_requests_answer_in_order() {
    let mut server = boot(1);
    let mut rng = StdRng::seed_from_u64(11);
    let requests: Vec<Request> = (0..8)
        .map(|_| XacmlRequest::random(&mut rng).to_request())
        .collect();
    let expected: Vec<Decision> = requests
        .iter()
        .map(|r| server.handle().decide(r).decision)
        .collect();

    let (mut tx, mut rx) = connect(&server);
    // Write the whole pipeline before reading anything back.
    let mut pipeline = Vec::new();
    for r in &requests {
        pipeline.extend_from_slice(&post("/decide", &wire::request_to_json(r)));
    }
    tx.write_all(&pipeline).unwrap();
    for want in &expected {
        let (status, resp) = rx.read_response().expect("pipelined response");
        assert_eq!(status, 200);
        let value = json::parse(std::str::from_utf8(&resp).unwrap()).unwrap();
        assert_eq!(
            value.get("decision").and_then(Json::as_str),
            Some(want.to_string().as_str())
        );
    }
    server.shutdown();
}

#[test]
fn batch_endpoint_shares_one_epoch_and_matches_sequential() {
    let mut server = boot(2);
    let mut rng = StdRng::seed_from_u64(23);
    let requests: Vec<Request> = (0..12)
        .map(|_| XacmlRequest::random(&mut rng).to_request())
        .collect();
    let expected: Vec<Decision> = requests
        .iter()
        .map(|r| server.handle().decide(r).decision)
        .collect();

    let mut body = String::from("{\"requests\": [");
    for (i, r) in requests.iter().enumerate() {
        if i > 0 {
            body.push_str(", ");
        }
        body.push_str(&wire::request_to_json(r));
    }
    body.push_str("]}");

    let (mut tx, mut rx) = connect(&server);
    tx.write_all(&post("/decide_batch", &body)).unwrap();
    let (status, resp) = rx.read_response().expect("batch response");
    assert_eq!(status, 200);
    let value = json::parse(std::str::from_utf8(&resp).unwrap()).unwrap();
    assert_eq!(
        value.get("count").and_then(Json::as_i64),
        Some(i64::try_from(requests.len()).unwrap())
    );
    let envelope_epoch = value.get("epoch").and_then(Json::as_i64).unwrap();
    let outcomes = value.get("outcomes").and_then(Json::as_arr).unwrap();
    assert_eq!(outcomes.len(), expected.len());
    for (outcome, want) in outcomes.iter().zip(&expected) {
        assert_eq!(
            outcome.get("decision").and_then(Json::as_str),
            Some(want.to_string().as_str())
        );
        // The whole batch answers from one snapshot.
        assert_eq!(
            outcome.get("epoch").and_then(Json::as_i64),
            Some(envelope_epoch)
        );
    }
    server.shutdown();
}

#[test]
fn malformed_payloads_get_400_not_a_hang() {
    let mut server = boot(1);
    for bad_body in [
        "not json at all",
        "[1, 2, 3]",
        "{\"unknown_category\": {}}",
        "{\"subject\": {\"role\": [1]}}",
        "{\"requests\": \"nope\"}",
    ] {
        let path = if bad_body.contains("requests") {
            "/decide_batch"
        } else {
            "/decide"
        };
        let (mut tx, mut rx) = connect(&server);
        tx.write_all(&post(path, bad_body)).unwrap();
        let (status, resp) = rx.read_response().expect("error response");
        assert_eq!(status, 400, "{bad_body} should be a 400");
        let value = json::parse(std::str::from_utf8(&resp).unwrap()).unwrap();
        assert!(value.get("error").and_then(Json::as_str).is_some());
    }
    // A garbled request line also gets a 400 (then the server closes).
    let (mut tx, mut rx) = connect(&server);
    tx.write_all(b"NONSENSE\r\n\r\n").unwrap();
    let (status, _) = rx.read_response().expect("malformed-line response");
    assert_eq!(status, 400);
    server.shutdown();
}

#[test]
fn unknown_routes_and_methods_are_refused() {
    let mut server = boot(1);
    let (mut tx, mut rx) = connect(&server);
    tx.write_all(b"GET /nope HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (status, _) = rx.read_response().unwrap();
    assert_eq!(status, 404);
    tx.write_all(b"GET /decide HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (status, _) = rx.read_response().unwrap();
    assert_eq!(status, 405);
    server.shutdown();
}

#[test]
fn metrics_reports_serve_and_http_counters() {
    let mut server = boot(1);
    let request = sample_request();
    let body = wire::request_to_json(&request);
    let (mut tx, mut rx) = connect(&server);
    for _ in 0..4 {
        tx.write_all(&post("/decide", &body)).unwrap();
        let (status, _) = rx.read_response().unwrap();
        assert_eq!(status, 200);
    }
    tx.write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
        .unwrap();
    let (status, resp) = rx.read_response().unwrap();
    assert_eq!(status, 200);
    let value = json::parse(std::str::from_utf8(&resp).unwrap()).unwrap();
    let http = value.get("http").expect("http section");
    assert_eq!(http.get("decisions").and_then(Json::as_i64), Some(4));
    assert!(value.get("serve").is_some());
    server.shutdown();
    assert_eq!(server.http_stats().decisions, 4);
}

#[test]
fn load_client_round_trips_cleanly() {
    let mut server = boot(2);
    let mut rng = StdRng::seed_from_u64(77);
    let workload: Vec<Request> = (0..32)
        .map(|_| XacmlRequest::random(&mut rng).to_request())
        .collect();
    let expected: Vec<Decision> = workload
        .iter()
        .map(|r| server.handle().decide(r).decision)
        .collect();
    for batch in [1usize, 8] {
        let report = run_load(
            server.addr(),
            &workload,
            &expected,
            &LoadOptions {
                connections: 2,
                requests: 512,
                batch,
                read_timeout: Duration::from_secs(5),
            },
        )
        .expect("load run");
        assert!(report.is_clean(), "batch={batch}: {report:?}");
        assert!(report.decisions >= 512, "batch={batch}: {report:?}");
        assert!(report.p50_ns > 0 && report.p99_ns >= report.p50_ns);
    }
    server.shutdown();
}

#[test]
fn snapshot_swap_mid_stream_never_serves_stale_epochs() {
    let mut server = boot(2);
    let request = sample_request();
    let body = wire::request_to_json(&request);
    let (mut tx, mut rx) = connect(&server);
    let mut last_epoch = 0i64;
    for i in 0..20 {
        if i % 5 == 4 {
            // Republish mid-stream; subsequent decisions must observe a
            // monotone epoch.
            server.handle().publish(DecisionSnapshot::new(
                vec![ground_truth_policy()],
                CombiningAlg::DenyOverrides,
            ));
        }
        tx.write_all(&post("/decide", &body)).unwrap();
        let (status, resp) = rx.read_response().unwrap();
        assert_eq!(status, 200);
        let value = json::parse(std::str::from_utf8(&resp).unwrap()).unwrap();
        let epoch = value.get("epoch").and_then(Json::as_i64).unwrap();
        assert!(
            epoch >= last_epoch,
            "epoch went backwards: {epoch} < {last_epoch}"
        );
        last_epoch = epoch;
    }
    assert!(last_epoch >= 4, "publishes were never observed");
    server.shutdown();
}
