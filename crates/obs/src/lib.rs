//! `agenp-obs` — the unified observability substrate for the AGENP
//! workspace: a lock-light [`MetricsRegistry`] (counters, gauges,
//! fixed-bucket histograms behind `Send + Sync` handles with sharded
//! atomics on hot paths), structured [`span!`] guards with parent/child
//! nesting and monotonic timing, a bounded ring-buffer [`FlightRecorder`]
//! that snapshots and dumps as JSON on demand or on degraded-mode
//! transitions, and a pluggable [`Exporter`] trait with JSON-lines and
//! in-memory implementations.
//!
//! # Global mode
//!
//! All instrumentation sites in the workspace go through one process-wide
//! handle gated by a single atomic flag:
//!
//! * [`ObsConfig::disabled()`] (the default) compiles the decide/solve
//!   hot paths down to one relaxed load and a branch per site — no
//!   clocks, no allocation, no atomic writes.
//! * [`ObsConfig::enabled()`] turns on metric publication, span
//!   recording, and latency histograms.
//!
//! ```
//! agenp_obs::install(agenp_obs::ObsConfig::enabled());
//! let decisions = agenp_obs::registry().counter("doc.decisions");
//! {
//!     let mut span = agenp_obs::span!("doc.request", shard = 3u64);
//!     decisions.incr();
//!     span.record("decision", "permit");
//! }
//! let snap = agenp_obs::snapshot("on_demand");
//! assert_eq!(snap.counter_value("doc.decisions"), 1);
//! assert!(!snap.spans_with_prefix("doc.").is_empty());
//! ```
//!
//! Naming scheme, span taxonomy, and the dump schema are documented in
//! `docs/OBSERVABILITY.md`.

mod export;
mod metrics;
mod recorder;
mod span;

pub use export::{Exporter, JsonLinesExporter, MemoryExporter, ObsSnapshot, DUMP_SCHEMA};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricSample, MetricValue, MetricsRegistry,
    DEFAULT_NS_BOUNDS,
};
pub use recorder::{FlightRecorder, DEFAULT_RECORDER_CAPACITY};
pub use span::{monotonic_ns, FieldValue, SpanGuard, SpanRecord};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{OnceLock, RwLock};

/// Global observability configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsConfig {
    enabled: bool,
    recorder_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig::disabled()
    }
}

impl ObsConfig {
    /// Telemetry off: every instrumentation site reduces to a relaxed
    /// load and a branch. The default.
    pub fn disabled() -> ObsConfig {
        ObsConfig {
            enabled: false,
            recorder_capacity: DEFAULT_RECORDER_CAPACITY,
        }
    }

    /// Telemetry on: metrics, spans, and latency histograms record.
    pub fn enabled() -> ObsConfig {
        ObsConfig {
            enabled: true,
            recorder_capacity: DEFAULT_RECORDER_CAPACITY,
        }
    }

    /// Rebounds the flight recorder (minimum 1 span).
    pub fn with_recorder_capacity(mut self, capacity: usize) -> ObsConfig {
        self.recorder_capacity = capacity.max(1);
        self
    }

    /// True when this config turns telemetry on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The flight-recorder bound this config applies.
    pub fn recorder_capacity(&self) -> usize {
        self.recorder_capacity
    }
}

/// The process-wide observability state: one registry, one flight
/// recorder, one optional exporter.
#[derive(Default)]
pub struct Obs {
    registry: MetricsRegistry,
    recorder: FlightRecorder,
    exporter: RwLock<Option<Box<dyn Exporter>>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("registry", &self.registry)
            .field("recorder", &self.recorder)
            .finish_non_exhaustive()
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// The global observability handle (created lazily, lives forever).
/// Handles resolved from it may be cached in `static`s: the registry is
/// never replaced, only the enabled flag moves.
pub fn obs() -> &'static Obs {
    static GLOBAL: OnceLock<Obs> = OnceLock::new();
    GLOBAL.get_or_init(Obs::default)
}

/// Applies `config` to the global handle: sets the enabled flag and
/// rebounds the flight recorder. Idempotent; callable any number of
/// times (benches toggle telemetry between phases).
pub fn install(config: ObsConfig) {
    obs().recorder.set_capacity(config.recorder_capacity);
    ENABLED.store(config.enabled, Ordering::Relaxed);
}

/// Is telemetry globally enabled? One relaxed load — this is the gate
/// every hot-path site checks first.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The global metrics registry.
pub fn registry() -> &'static MetricsRegistry {
    &obs().registry
}

/// The global flight recorder.
pub fn recorder() -> &'static FlightRecorder {
    &obs().recorder
}

/// Installs (or replaces) the global exporter. `None`-like removal:
/// [`clear_exporter`].
pub fn set_exporter(exporter: Box<dyn Exporter>) {
    *obs().exporter.write().expect("exporter slot poisoned") = Some(exporter);
}

/// Removes the global exporter.
pub fn clear_exporter() {
    *obs().exporter.write().expect("exporter slot poisoned") = None;
}

/// Captures a point-in-time snapshot of the registry and flight
/// recorder, labelled with `trigger`.
pub fn snapshot(trigger: &str) -> ObsSnapshot {
    ObsSnapshot {
        trigger: trigger.to_owned(),
        captured_ns: monotonic_ns(),
        metrics: registry().snapshot(),
        spans: recorder().snapshot(),
        dropped_spans: recorder().dropped(),
    }
}

/// Snapshots and delivers to the installed exporter. Returns `Ok(false)`
/// when no exporter is installed (the snapshot is discarded), `Ok(true)`
/// on delivery. Called on demand and by degraded-mode transitions
/// (`Ams::refresh_policies`).
///
/// # Errors
///
/// I/O failures of the exporter sink.
pub fn dump(trigger: &str) -> std::io::Result<bool> {
    dump_inner(trigger)
}

/// [`dump`], but only when telemetry is globally enabled; a disabled
/// process pays one relaxed load. This is the call fault boundaries use
/// (degraded-mode transitions, chaos-fabric fault events): unconditional
/// in the control flow, free when nobody is watching. Export errors are
/// swallowed — a failing telemetry sink must never take down the serving
/// path it is observing. Returns `true` only when a snapshot was
/// delivered.
pub fn dump_if_enabled(trigger: &str) -> bool {
    enabled() && dump_inner(trigger).unwrap_or(false)
}

fn dump_inner(trigger: &str) -> std::io::Result<bool> {
    // Capture before taking the exporter lock: snapshotting takes the
    // recorder lock and must not nest inside another obs lock.
    let snap = snapshot(trigger);
    match &*obs().exporter.read().expect("exporter slot poisoned") {
        Some(e) => e.export(&snap).map(|()| true),
        None => Ok(false),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The enabled flag and exporter slot are process-global; tests that
    /// toggle them serialize here.
    static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_mode_records_nothing() {
        let _g = GLOBAL_LOCK.lock().unwrap();
        install(ObsConfig::disabled());
        let before = recorder().recorded();
        {
            let mut s = span!("t.disabled", n = 1u64);
            assert!(!s.is_live());
            s.record("k", 2u64);
        }
        assert_eq!(recorder().recorded(), before);
        assert!(!enabled());
    }

    #[test]
    fn enabled_mode_records_spans_and_dumps() {
        let _g = GLOBAL_LOCK.lock().unwrap();
        install(ObsConfig::enabled());
        let exporter = MemoryExporter::new();
        set_exporter(Box::new(exporter.clone()));
        {
            let _s = span!("t.enabled", phase = "unit");
        }
        assert!(dump("on_demand").unwrap());
        let docs = exporter.exports();
        assert_eq!(docs.len(), 1);
        assert!(docs[0].contains("\"t.enabled\""));
        assert!(docs[0].contains("\"trigger\": \"on_demand\""));
        clear_exporter();
        assert!(!dump("on_demand").unwrap(), "no exporter installed");
        install(ObsConfig::disabled());
    }

    #[test]
    fn config_accessors() {
        let c = ObsConfig::enabled().with_recorder_capacity(0);
        assert!(c.is_enabled());
        assert_eq!(c.recorder_capacity(), 1, "capacity clamps to 1");
        assert_eq!(ObsConfig::default(), ObsConfig::disabled());
    }
}
