//! Snapshot export: one [`ObsSnapshot`] value combining the metrics
//! registry and the flight recorder, a hand-rolled JSON rendering (the
//! workspace deliberately has no JSON dependency — the harness re-reads
//! dumps through `agenp_bench::json::validate`), and the pluggable
//! [`Exporter`] trait with JSON-lines and in-memory implementations.

use crate::metrics::{MetricSample, MetricValue};
use crate::span::{FieldValue, SpanRecord};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Schema identifier stamped into every dump; bump on breaking changes
/// (`docs/OBSERVABILITY.md` documents the layout).
pub const DUMP_SCHEMA: &str = "agenp-obs/dump/v1";

/// A point-in-time view of everything the observability layer knows:
/// every registered metric and the flight recorder's resident spans.
#[derive(Clone, Debug)]
pub struct ObsSnapshot {
    /// What triggered the snapshot (`"on_demand"`, `"degraded"`, ...).
    pub trigger: String,
    /// Monotonic capture time (ns since process epoch).
    pub captured_ns: u64,
    /// Registered metrics, name-ordered.
    pub metrics: Vec<MetricSample>,
    /// Resident spans, oldest first.
    pub spans: Vec<SpanRecord>,
    /// Spans evicted from the ring before this snapshot.
    pub dropped_spans: u64,
}

impl ObsSnapshot {
    /// Renders the snapshot as one compact JSON document (a single line,
    /// suitable for JSON-lines streams).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.spans.len() * 128);
        out.push_str("{\"schema\": \"");
        out.push_str(DUMP_SCHEMA);
        out.push_str("\", \"trigger\": ");
        push_json_str(&mut out, &self.trigger);
        out.push_str(&format!(", \"captured_ns\": {}", self.captured_ns));
        out.push_str(", \"metrics\": [");
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            push_metric(&mut out, m);
        }
        out.push_str("], \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            push_span(&mut out, s);
        }
        out.push_str(&format!("], \"dropped_spans\": {}}}", self.dropped_spans));
        out
    }

    /// The spans whose name starts with `prefix` (taxonomy queries:
    /// `snapshot.spans_with_prefix("asp.")`).
    pub fn spans_with_prefix(&self, prefix: &str) -> Vec<&SpanRecord> {
        self.spans
            .iter()
            .filter(|s| s.name.starts_with(prefix))
            .collect()
    }

    /// The sample registered under `name`, if any.
    pub fn metric(&self, name: &str) -> Option<&MetricSample> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Convenience: the counter total registered under `name` (0 when
    /// absent or not a counter).
    pub fn counter_value(&self, name: &str) -> u64 {
        match self.metric(name).map(|m| &m.value) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }
}

fn push_metric(out: &mut String, m: &MetricSample) {
    out.push_str("{\"name\": ");
    push_json_str(out, &m.name);
    match &m.value {
        MetricValue::Counter(v) => {
            out.push_str(&format!(", \"kind\": \"counter\", \"value\": {v}}}"));
        }
        MetricValue::Gauge(v) => {
            out.push_str(&format!(", \"kind\": \"gauge\", \"value\": {v}}}"));
        }
        MetricValue::Histogram(h) => {
            out.push_str(&format!(
                ", \"kind\": \"histogram\", \"count\": {}, \"sum\": {}, \"buckets\": [",
                h.count, h.sum
            ));
            for (i, c) in h.counts.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                match h.bounds.get(i) {
                    Some(b) => out.push_str(&format!("{{\"le\": {b}, \"count\": {c}}}")),
                    None => out.push_str(&format!("{{\"le\": null, \"count\": {c}}}")),
                }
            }
            out.push_str("]}");
        }
    }
}

fn push_span(out: &mut String, s: &SpanRecord) {
    out.push_str(&format!("{{\"id\": {}, \"parent\": ", s.id));
    match s.parent {
        Some(p) => out.push_str(&p.to_string()),
        None => out.push_str("null"),
    }
    out.push_str(", \"name\": ");
    push_json_str(out, s.name);
    out.push_str(&format!(
        ", \"thread\": {}, \"start_ns\": {}, \"dur_ns\": {}, \"fields\": {{",
        s.thread, s.start_ns, s.dur_ns
    ));
    for (i, (k, v)) in s.fields.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_json_str(out, k);
        out.push_str(": ");
        push_field(out, v);
    }
    out.push_str("}}");
}

fn push_field(out: &mut String, v: &FieldValue) {
    match v {
        FieldValue::U64(n) => out.push_str(&n.to_string()),
        FieldValue::I64(n) => out.push_str(&n.to_string()),
        FieldValue::F64(n) if n.is_finite() => out.push_str(&format!("{n:?}")),
        FieldValue::F64(_) => out.push_str("null"),
        FieldValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        FieldValue::Str(s) => push_json_str(out, s),
    }
}

/// Appends `s` as an RFC 8259 string literal (escaping quotes,
/// backslashes, and control characters).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A pluggable snapshot sink. Exporters must tolerate being called from
/// any thread (degraded-mode transitions dump from whatever thread hit
/// the error).
pub trait Exporter: Send + Sync {
    /// Delivers one snapshot.
    ///
    /// # Errors
    ///
    /// I/O failures of the underlying sink.
    fn export(&self, snapshot: &ObsSnapshot) -> std::io::Result<()>;
}

/// Appends each snapshot as one JSON line to a file (created on first
/// export).
#[derive(Debug)]
pub struct JsonLinesExporter {
    path: PathBuf,
}

impl JsonLinesExporter {
    /// An exporter appending to `path`.
    pub fn new(path: impl AsRef<Path>) -> JsonLinesExporter {
        JsonLinesExporter {
            path: path.as_ref().to_path_buf(),
        }
    }

    /// The target path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Exporter for JsonLinesExporter {
    fn export(&self, snapshot: &ObsSnapshot) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        f.write_all(snapshot.to_json().as_bytes())?;
        f.write_all(b"\n")
    }
}

/// Collects exported snapshots in memory (tests and the bench harness).
/// Cheap to clone; clones share the buffer.
#[derive(Clone, Debug, Default)]
pub struct MemoryExporter {
    exports: Arc<Mutex<Vec<String>>>,
}

impl MemoryExporter {
    /// An empty exporter.
    pub fn new() -> MemoryExporter {
        MemoryExporter::default()
    }

    /// The JSON documents exported so far, oldest first.
    pub fn exports(&self) -> Vec<String> {
        self.exports
            .lock()
            .expect("memory exporter poisoned")
            .clone()
    }

    /// Number of exports delivered.
    pub fn len(&self) -> usize {
        self.exports.lock().expect("memory exporter poisoned").len()
    }

    /// True when nothing was exported yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Exporter for MemoryExporter {
    fn export(&self, snapshot: &ObsSnapshot) -> std::io::Result<()> {
        self.exports
            .lock()
            .expect("memory exporter poisoned")
            .push(snapshot.to_json());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HistogramSnapshot;

    fn sample_snapshot() -> ObsSnapshot {
        ObsSnapshot {
            trigger: "test \"quoted\"".into(),
            captured_ns: 42,
            metrics: vec![
                MetricSample {
                    name: "a.count".into(),
                    value: MetricValue::Counter(7),
                },
                MetricSample {
                    name: "a.gauge".into(),
                    value: MetricValue::Gauge(-3),
                },
                MetricSample {
                    name: "a.lat_ns".into(),
                    value: MetricValue::Histogram(HistogramSnapshot {
                        bounds: vec![10, 100],
                        counts: vec![1, 2, 3],
                        count: 6,
                        sum: 1234,
                    }),
                },
            ],
            spans: vec![SpanRecord {
                id: 1,
                parent: None,
                name: "t.root",
                thread: 1,
                start_ns: 5,
                dur_ns: 9,
                fields: vec![
                    ("ok", FieldValue::Bool(true)),
                    ("mode", FieldValue::Str("semi\nnaive".into())),
                    ("ratio", FieldValue::F64(1.5)),
                ],
            }],
            dropped_spans: 2,
        }
    }

    #[test]
    fn json_dump_is_well_formed_and_escaped() {
        let json = sample_snapshot().to_json();
        assert!(json.contains("\"schema\": \"agenp-obs/dump/v1\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("semi\\nnaive"));
        assert!(json.contains("\"le\": null"));
        assert!(json.contains("\"dropped_spans\": 2"));
        assert!(!json.contains('\n'), "dump must be one JSON line");
    }

    #[test]
    fn nonfinite_floats_render_null() {
        let mut s = String::new();
        push_field(&mut s, &FieldValue::F64(f64::NAN));
        assert_eq!(s, "null");
    }

    #[test]
    fn memory_exporter_accumulates() {
        let exp = MemoryExporter::new();
        let shared = exp.clone();
        exp.export(&sample_snapshot()).unwrap();
        assert_eq!(shared.len(), 1);
        assert!(shared.exports()[0].contains("a.count"));
    }

    #[test]
    fn snapshot_queries() {
        let snap = sample_snapshot();
        assert_eq!(snap.counter_value("a.count"), 7);
        assert_eq!(snap.counter_value("a.gauge"), 0, "gauge is not a counter");
        assert_eq!(snap.spans_with_prefix("t.").len(), 1);
        assert_eq!(snap.spans_with_prefix("x.").len(), 0);
    }
}
