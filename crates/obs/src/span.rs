//! Structured spans: RAII guards with parent/child nesting, monotonic
//! timing, and key=value fields, recorded into the global
//! [`FlightRecorder`](crate::FlightRecorder) on drop.
//!
//! Spans are meant for *run boundaries* — a grounding pass, a solve, a
//! learning round, a snapshot publish — not per-request hot paths (those
//! get histograms). The [`span!`](crate::span!) macro checks the global
//! enabled flag first, so a disabled build pays one relaxed load and a
//! branch per site.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A typed span/field value.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> FieldValue {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> FieldValue {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> FieldValue {
        FieldValue::I64(v)
    }
}
impl From<i32> for FieldValue {
    fn from(v: i32) -> FieldValue {
        FieldValue::I64(v as i64)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> FieldValue {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_owned())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// One finished span as stored in the flight recorder.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Process-unique span id (monotone).
    pub id: u64,
    /// Enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Static span name (`<crate>.<operation>`).
    pub name: &'static str,
    /// Small dense id of the recording thread.
    pub thread: u64,
    /// Nanoseconds since the process-wide monotonic epoch at span start.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// key=value fields attached to the span.
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// Nanoseconds since the process-wide monotonic epoch (established on
/// first use; never goes backwards).
pub fn monotonic_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static ID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|id| *id)
}

thread_local! {
    /// Innermost live span on this thread, for parent/child linking.
    static CURRENT_SPAN: Cell<Option<u64>> = const { Cell::new(None) };
}

struct ActiveSpan {
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start: Instant,
    start_ns: u64,
    fields: Vec<(&'static str, FieldValue)>,
}

/// RAII span guard. Created through [`span!`](crate::span!); a disabled
/// guard is an empty shell whose every operation is a null-check.
pub struct SpanGuard(Option<Box<ActiveSpan>>);

impl SpanGuard {
    /// Starts a live span nested under the thread's current span.
    pub fn enter(name: &'static str) -> SpanGuard {
        let id = next_span_id();
        let parent = CURRENT_SPAN.with(|c| c.replace(Some(id)));
        SpanGuard(Some(Box::new(ActiveSpan {
            id,
            parent,
            name,
            start: Instant::now(),
            start_ns: monotonic_ns(),
            fields: Vec::new(),
        })))
    }

    /// A guard that records nothing (the disabled path).
    pub fn noop() -> SpanGuard {
        SpanGuard(None)
    }

    /// Attaches (or appends) a key=value field.
    pub fn record(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if let Some(s) = &mut self.0 {
            s.fields.push((key, value.into()));
        }
    }

    /// The span id (`None` for a noop guard).
    pub fn id(&self) -> Option<u64> {
        self.0.as_ref().map(|s| s.id)
    }

    /// True when this guard will record on drop.
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(s) = self.0.take() {
            CURRENT_SPAN.with(|c| c.set(s.parent));
            crate::recorder().record(SpanRecord {
                id: s.id,
                parent: s.parent,
                name: s.name,
                thread: thread_id(),
                start_ns: s.start_ns,
                dur_ns: s.start.elapsed().as_nanos() as u64,
                fields: s.fields,
            });
        }
    }
}

impl std::fmt::Debug for SpanGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(s) => f.debug_struct("SpanGuard").field("name", &s.name).finish(),
            None => f.write_str("SpanGuard(noop)"),
        }
    }
}

/// Starts a [`SpanGuard`] when the global telemetry flag is on, a noop
/// guard otherwise. Fields are `key = value` pairs evaluated only when
/// the span is live... except the values, which are evaluated eagerly —
/// keep them to already-computed scalars.
///
/// ```
/// agenp_obs::install(agenp_obs::ObsConfig::enabled());
/// {
///     let mut span = agenp_obs::span!("doc.example", items = 3u64);
///     span.record("done", true);
/// }
/// assert!(agenp_obs::recorder().len() >= 1);
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal $(, $key:ident = $value:expr)* $(,)?) => {{
        #[allow(unused_mut)]
        let mut guard = if $crate::enabled() {
            $crate::SpanGuard::enter($name)
        } else {
            $crate::SpanGuard::noop()
        };
        $( guard.record(stringify!($key), $value); )*
        guard
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_conversions_cover_scalars() {
        assert_eq!(FieldValue::from(3u32), FieldValue::U64(3));
        assert_eq!(FieldValue::from(3usize), FieldValue::U64(3));
        assert_eq!(FieldValue::from(-3i32), FieldValue::I64(-3));
        assert_eq!(FieldValue::from(true), FieldValue::Bool(true));
        assert_eq!(FieldValue::from("x"), FieldValue::Str("x".into()));
    }

    #[test]
    fn noop_guard_is_inert() {
        let mut g = SpanGuard::noop();
        g.record("k", 1u64);
        assert!(!g.is_live());
        assert_eq!(g.id(), None);
    }

    #[test]
    fn nesting_links_parents_on_one_thread() {
        let outer = SpanGuard::enter("t.outer");
        let inner = SpanGuard::enter("t.inner");
        let (outer_id, inner_id) = (outer.id().unwrap(), inner.id().unwrap());
        assert_ne!(outer_id, inner_id);
        drop(inner);
        drop(outer);
        let spans = crate::recorder().snapshot();
        let inner_rec = spans.iter().find(|s| s.id == inner_id).unwrap();
        assert_eq!(inner_rec.parent, Some(outer_id));
        let outer_rec = spans.iter().find(|s| s.id == outer_id).unwrap();
        assert!(outer_rec.dur_ns >= inner_rec.dur_ns);
    }

    #[test]
    fn monotonic_clock_never_regresses() {
        let a = monotonic_ns();
        let b = monotonic_ns();
        assert!(b >= a);
    }
}
