//! The lock-light metrics registry: named counters, gauges, and
//! fixed-bucket histograms behind `Send + Sync` handles.
//!
//! Handles are `Arc`s resolved once (get-or-register takes a short
//! read-lock on the name map); every subsequent update touches only
//! atomics. Counters are sharded across cache-line-padded slots so worker
//! threads incrementing the same counter do not bounce one cache line
//! between cores.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// Number of padded slots per counter. A small power of two: enough to
/// spread the serving tier's worker threads, small enough that reading a
/// counter stays a handful of loads.
const COUNTER_SHARDS: usize = 8;

/// One cache line per atomic so sharded increments never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Round-robin shard assignment per thread, fixed at first use.
fn shard_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
    }
    SHARD.with(|s| *s)
}

/// A monotone counter sharded over padded atomics.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl Counter {
    /// Adds `n` to the calling thread's shard.
    pub fn add(&self, n: u64) {
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current total across all shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("value", &self.value())
            .finish()
    }
}

/// A last-value-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Default histogram bucket upper bounds: nanosecond latencies from 1 µs
/// to ~1 s in powers of four, matching the `*_ns` metric naming
/// convention (`docs/OBSERVABILITY.md`).
pub const DEFAULT_NS_BOUNDS: [u64; 11] = [
    1_000,
    4_000,
    16_000,
    64_000,
    256_000,
    1_024_000,
    4_096_000,
    16_384_000,
    65_536_000,
    262_144_000,
    1_048_576_000,
];

/// A fixed-bucket histogram: `bounds.len() + 1` atomic buckets (the last
/// is the implicit `+Inf` overflow), plus a running count and sum.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        let idx = self.bounds.partition_point(|b| v > *b);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds; the final bucket is `+Inf`.
    pub bounds: Vec<u64>,
    /// One count per bound, plus the overflow bucket.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// The upper bound of the bucket containing the `q`-quantile
    /// observation (`None` when empty or when the quantile lands in the
    /// overflow bucket).
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank.max(1) {
                return self.bounds.get(i).copied();
            }
        }
        None
    }

    /// Mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A registered metric handle.
#[derive(Clone, Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A point-in-time value of one registered metric.
#[derive(Clone, Debug)]
pub struct MetricSample {
    /// The registered name (`<crate>.<component>.<what>`).
    pub name: String,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// The value half of a [`MetricSample`].
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// Monotone counter total.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// A `Send + Sync` name→metric registry. Registration is get-or-create
/// and idempotent; the returned `Arc` handle is the hot-path interface,
/// so the name map is only consulted once per call site.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(m) = self.metrics.read().expect("metrics poisoned").get(name) {
            return match m {
                Metric::Counter(c) => c.clone(),
                _ => panic!("metric `{name}` is not a counter"),
            };
        }
        let mut map = self.metrics.write().expect("metrics poisoned");
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// The gauge registered under `name`, creating it on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(m) = self.metrics.read().expect("metrics poisoned").get(name) {
            return match m {
                Metric::Gauge(g) => g.clone(),
                _ => panic!("metric `{name}` is not a gauge"),
            };
        }
        let mut map = self.metrics.write().expect("metrics poisoned");
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// The histogram registered under `name` with the default
    /// nanosecond-latency buckets ([`DEFAULT_NS_BOUNDS`]).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &DEFAULT_NS_BOUNDS)
    }

    /// The histogram registered under `name`, creating it with `bounds` on
    /// first use (later calls reuse the original bounds).
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different metric kind.
    pub fn histogram_with(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        if let Some(m) = self.metrics.read().expect("metrics poisoned").get(name) {
            return match m {
                Metric::Histogram(h) => h.clone(),
                _ => panic!("metric `{name}` is not a histogram"),
            };
        }
        let mut map = self.metrics.write().expect("metrics poisoned");
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(bounds))))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.read().expect("metrics poisoned").len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time values of every registered metric, in name order.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        self.metrics
            .read()
            .expect("metrics poisoned")
            .iter()
            .map(|(name, m)| MetricSample {
                name: name.clone(),
                value: match m {
                    Metric::Counter(c) => MetricValue::Counter(c.value()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.value()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("t.count");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.value(), 4000);
        // Re-registration returns the same counter.
        assert_eq!(reg.counter("t.count").value(), 4000);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn gauges_set_and_drift() {
        let g = MetricsRegistry::new().gauge("t.gauge");
        g.set(5);
        g.add(-2);
        assert_eq!(g.value(), 3);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram_with("t.lat", &[10, 100, 1000]);
        for v in [1, 5, 50, 500, 5000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.sum, 5556);
        assert_eq!(snap.counts, vec![2, 1, 1, 1]);
        assert_eq!(snap.quantile_bound(0.5), Some(100));
        assert_eq!(snap.quantile_bound(1.0), None, "max lands in +Inf");
        assert!(snap.mean() > 1000.0);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.gauge("t.mixed");
        reg.counter("t.mixed");
    }

    #[test]
    fn snapshot_is_name_ordered() {
        let reg = MetricsRegistry::new();
        reg.counter("z.last");
        reg.counter("a.first");
        let names: Vec<String> = reg.snapshot().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["a.first", "z.last"]);
    }
}
