//! The flight recorder: a bounded ring buffer of finished
//! [`SpanRecord`]s that can be snapshotted at any time and dumped as
//! JSON on demand or on error/degraded-mode transitions.

use crate::span::SpanRecord;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default ring capacity: enough for every run boundary of a full
/// autonomic loop plus a serving soak, small enough to snapshot cheaply.
pub const DEFAULT_RECORDER_CAPACITY: usize = 4096;

/// A bounded, thread-safe ring buffer of span records. When full, the
/// oldest record is overwritten and counted in `dropped`.
#[derive(Debug)]
pub struct FlightRecorder {
    ring: Mutex<VecDeque<SpanRecord>>,
    capacity: AtomicUsize,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::with_capacity(DEFAULT_RECORDER_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder bounded to `capacity` spans (minimum 1).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            ring: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 1 << 16))),
            capacity: AtomicUsize::new(capacity.max(1)),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Rebounds the ring (evicting oldest records if shrinking).
    pub fn set_capacity(&self, capacity: usize) {
        let capacity = capacity.max(1);
        self.capacity.store(capacity, Ordering::Relaxed);
        let mut ring = self.ring.lock().expect("flight recorder poisoned");
        while ring.len() > capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The current bound.
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Appends one finished span, evicting the oldest when full.
    pub fn record(&self, record: SpanRecord) {
        let capacity = self.capacity();
        let mut ring = self.ring.lock().expect("flight recorder poisoned");
        if ring.len() >= capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(record);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Spans currently resident.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("flight recorder poisoned").len()
    }

    /// True when no spans are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans recorded over the recorder's lifetime (resident + evicted).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Spans evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copies out the resident spans, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.ring
            .lock()
            .expect("flight recorder poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Empties the ring (lifetime counters are preserved).
    pub fn clear(&self) {
        self.ring.lock().expect("flight recorder poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64) -> SpanRecord {
        SpanRecord {
            id,
            parent: None,
            name: "t.span",
            thread: 1,
            start_ns: id,
            dur_ns: 10,
            fields: Vec::new(),
        }
    }

    #[test]
    fn ring_evicts_oldest_when_full() {
        let r = FlightRecorder::with_capacity(3);
        for id in 0..5 {
            r.record(rec(id));
        }
        let ids: Vec<u64> = r.snapshot().iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![2, 3, 4]);
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.dropped(), 2);
    }

    #[test]
    fn shrinking_capacity_evicts() {
        let r = FlightRecorder::with_capacity(4);
        for id in 0..4 {
            r.record(rec(id));
        }
        r.set_capacity(2);
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 2);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.recorded(), 4, "lifetime counter survives clear");
    }
}
