//! Seeded generators for programs, grammars, policies, and request streams.
//!
//! Everything here draws from the deterministic offline `rand` shim, so one
//! `u64` seed pins a whole case. The generators are deliberately *small and
//! safe by construction*:
//!
//! * ASP programs are **safe** (every variable is bound by a positive body
//!   atom) and **stratified** (no recursion through negation), with no
//!   arithmetic assignments — so the naive full-universe reference grounder
//!   in [`crate::reference`] is complete for them, and a stratified program
//!   has at most one answer set for the perfect-model fixpoint to find.
//! * Universes stay tiny (two or three constants, a handful of predicates of
//!   arity ≤ 2) so brute-force stable-model enumeration stays feasible.
//! * Policy conditions cover every [`Cond`] constructor, including the
//!   three-valued `Indeterminate` paths (missing attributes, type-mismatched
//!   comparisons), and request streams contain deliberate duplicates to
//!   exercise the batch-dedup and cache paths of the serving tier.

use agenp_asp::{Atom, CmpOp, Literal, Program, Rule, Symbol, Term};
use agenp_grammar::{nt, t, Asg, CfgBuilder};
use agenp_policy::{
    AttrValue, Category, CombiningAlg, Cond, CondOp, Effect, Obligation, Policy, PolicyRule,
    Request,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The generator RNG for `seed`. All case runners derive their randomness
/// from this single stream, so the seed alone reproduces a case.
pub fn rng_for(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Constant pool for generated programs.
const CONSTS: [&str; 3] = ["a", "b", "c"];
/// Variable pool for generated rules.
const VARS: [&str; 2] = ["X", "Y"];

/// A predicate in a generated program: name, arity, and the stratum the
/// generator assigned it (negation only ever points *down* strata).
#[derive(Clone, Debug)]
struct PredSpec {
    name: String,
    arity: usize,
    stratum: usize,
}

/// Generates a safe stratified ASP program: facts, (possibly recursive)
/// positive rules, stratified negation, comparison builtins, and an
/// occasional integrity constraint. Never generates arithmetic assignments,
/// so the program's Herbrand universe is exactly its constants.
pub fn stratified_program(rng: &mut StdRng) -> Program {
    let n_consts = rng.gen_range(2..=CONSTS.len());
    let consts = &CONSTS[..n_consts];
    let n_preds = rng.gen_range(3..=6);
    let mut preds: Vec<PredSpec> = (0..n_preds)
        .map(|i| PredSpec {
            name: format!("p{i}"),
            arity: rng.gen_range(0..=2),
            stratum: rng.gen_range(0..=2),
        })
        .collect();
    // Guarantee at least one arity-1 stratum-0 predicate so every rule can
    // find a positive binder for its variables.
    preds[0] = PredSpec {
        name: "p0".to_owned(),
        arity: 1,
        stratum: 0,
    };

    let mut program = Program::new();
    for _ in 0..rng.gen_range(1..=5) {
        let p = &preds[rng.gen_range(0..preds.len())];
        program.push(Rule::fact(ground_atom(rng, p, consts)));
    }
    let n_rules = rng.gen_range(1..=5);
    let mut made = 0;
    let mut attempts = 0;
    while made < n_rules && attempts < n_rules * 4 {
        attempts += 1;
        if let Some(rule) = gen_rule(rng, &preds, consts) {
            program.push(rule);
            made += 1;
        }
    }
    if rng.gen_bool(0.4) {
        if let Some(c) = gen_constraint(rng, &preds, consts) {
            program.push(c);
        }
    }
    debug_assert!(
        program.unsafe_rule().is_none(),
        "generator emitted an unsafe rule"
    );
    program
}

/// A random ground atom for `p` over `consts`.
fn ground_atom(rng: &mut StdRng, p: &PredSpec, consts: &[&str]) -> Atom {
    let args = (0..p.arity)
        .map(|_| Term::sym(consts[rng.gen_range(0..consts.len())]))
        .collect();
    Atom::new(p.name.as_str(), args)
}

/// A body-literal argument: an already-bound variable or a constant.
fn bound_arg(rng: &mut StdRng, bound: &[&'static str], consts: &[&str]) -> Term {
    if !bound.is_empty() && rng.gen_bool(0.5) {
        Term::var(bound[rng.gen_range(0..bound.len())])
    } else {
        Term::sym(consts[rng.gen_range(0..consts.len())])
    }
}

/// A positive atom that *binds* `var`: `var` sits in one argument slot, the
/// rest are filled from already-bound variables and constants.
fn binder_atom(
    rng: &mut StdRng,
    q: &PredSpec,
    var: &'static str,
    bound: &[&'static str],
    consts: &[&str],
) -> Atom {
    let slot = rng.gen_range(0..q.arity);
    let args = (0..q.arity)
        .map(|i| {
            if i == slot {
                Term::var(var)
            } else {
                bound_arg(rng, bound, consts)
            }
        })
        .collect();
    Atom::new(q.name.as_str(), args)
}

/// A random rule with head stratum ≥ positive body strata and head
/// stratum strictly above negative body strata. Returns `None` when no
/// eligible binder or negated predicate exists for the shape the dice
/// picked.
fn gen_rule(rng: &mut StdRng, preds: &[PredSpec], consts: &[&str]) -> Option<Rule> {
    let head_pred = &preds[rng.gen_range(0..preds.len())];
    let mut head_vars: Vec<&'static str> = Vec::new();
    let head_args: Vec<Term> = (0..head_pred.arity)
        .map(|_| {
            if rng.gen_bool(0.7) {
                let v = VARS[rng.gen_range(0..VARS.len())];
                if !head_vars.contains(&v) {
                    head_vars.push(v);
                }
                Term::var(v)
            } else {
                Term::sym(consts[rng.gen_range(0..consts.len())])
            }
        })
        .collect();
    let head = Atom::new(head_pred.name.as_str(), head_args);

    let mut body: Vec<Literal> = Vec::new();
    let mut bound: Vec<&'static str> = Vec::new();
    // One positive binder per head variable keeps the rule safe.
    for v in &head_vars {
        let q = pick_pred(rng, preds, |q| {
            q.arity >= 1 && q.stratum <= head_pred.stratum
        })?;
        body.push(Literal::Pos(binder_atom(rng, q, v, &bound, consts)));
        bound.push(v);
    }
    // Extra positive literals: same or lower stratum, only bound variables.
    for _ in 0..rng.gen_range(0..=2) {
        if let Some(q) = pick_pred(rng, preds, |q| q.stratum <= head_pred.stratum) {
            let args = (0..q.arity)
                .map(|_| bound_arg(rng, &bound, consts))
                .collect();
            body.push(Literal::Pos(Atom::new(q.name.as_str(), args)));
        }
    }
    // A comparison over bound terms (never an assignment: both sides are
    // ground after substitution).
    if !bound.is_empty() && rng.gen_bool(0.3) {
        let ops = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ];
        body.push(Literal::Cmp(
            ops[rng.gen_range(0..ops.len())],
            Term::var(bound[rng.gen_range(0..bound.len())]),
            bound_arg(rng, &bound, consts),
        ));
    }
    // Stratified negation: the negated predicate lives strictly below.
    if head_pred.stratum >= 1 && rng.gen_bool(0.5) {
        if let Some(q) = pick_pred(rng, preds, |q| q.stratum < head_pred.stratum) {
            let args = (0..q.arity)
                .map(|_| bound_arg(rng, &bound, consts))
                .collect();
            body.push(Literal::Neg(Atom::new(q.name.as_str(), args)));
        }
    }
    Some(if body.is_empty() && head.is_ground() {
        Rule::fact(head)
    } else if body.is_empty() {
        return None; // an unbound non-ground head cannot happen, but be safe
    } else {
        Rule::new(head, body)
    })
}

/// A random integrity constraint. Negative literals are fine here: a
/// constraint derives nothing, so it cannot break stratification.
fn gen_constraint(rng: &mut StdRng, preds: &[PredSpec], consts: &[&str]) -> Option<Rule> {
    let mut body: Vec<Literal> = Vec::new();
    let mut bound: Vec<&'static str> = Vec::new();
    let q = pick_pred(rng, preds, |q| q.arity >= 1)?;
    let v = VARS[0];
    body.push(Literal::Pos(binder_atom(rng, q, v, &bound, consts)));
    bound.push(v);
    if rng.gen_bool(0.5) {
        let q = pick_pred(rng, preds, |_| true)?;
        let args = (0..q.arity)
            .map(|_| bound_arg(rng, &bound, consts))
            .collect();
        let atom = Atom::new(q.name.as_str(), args);
        body.push(if rng.gen_bool(0.5) {
            Literal::Pos(atom)
        } else {
            Literal::Neg(atom)
        });
    }
    Some(Rule::constraint(body))
}

/// A uniformly random predicate satisfying `ok`, or `None` if none does.
fn pick_pred<'a>(
    rng: &mut StdRng,
    preds: &'a [PredSpec],
    ok: impl Fn(&PredSpec) -> bool,
) -> Option<&'a PredSpec> {
    let eligible: Vec<&PredSpec> = preds.iter().filter(|p| ok(p)).collect();
    if eligible.is_empty() {
        None
    } else {
        Some(eligible[rng.gen_range(0..eligible.len())])
    }
}

/// Renames every predicate in `program` through `map` (predicate name →
/// new name), preserving structure. Names absent from the map pass through.
pub(crate) fn map_program_preds(program: &Program, map: impl Fn(&str) -> String) -> Program {
    let map_atom = |a: &Atom| -> Atom {
        Atom::new(map(&a.pred.name()).as_str(), a.args.clone()).with_trace(a.trace.clone())
    };
    let mut out = Program::new();
    for rule in program.rules() {
        let head = rule.head.as_ref().map(&map_atom);
        let body = rule
            .body
            .iter()
            .map(|l| match l {
                Literal::Pos(a) => Literal::Pos(map_atom(a)),
                Literal::Neg(a) => Literal::Neg(map_atom(a)),
                Literal::Cmp(op, l, r) => Literal::Cmp(*op, l.clone(), r.clone()),
            })
            .collect();
        out.push(Rule { head, body });
    }
    for w in program.weak_constraints() {
        out.push_weak(w.clone());
    }
    out
}

/// The set of predicate names appearing anywhere in `program`.
pub(crate) fn program_preds(program: &Program) -> Vec<Symbol> {
    let mut out: Vec<Symbol> = Vec::new();
    let mut push = |s: Symbol| {
        if !out.contains(&s) {
            out.push(s);
        }
    };
    for rule in program.rules() {
        if let Some(h) = &rule.head {
            push(h.pred);
        }
        for l in &rule.body {
            if let Some(a) = l.atom() {
                push(a.pred);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Policies and requests
// ---------------------------------------------------------------------------

/// Attribute-name vocabulary for generated conditions and requests.
const ATTRS: [&str; 3] = ["role", "level", "zone"];
/// String-value vocabulary.
const STRS: [&str; 3] = ["alpha", "beta", "gamma"];

/// A random attribute value: a small string, a small integer, or a bool.
/// The pools deliberately overlap in spirit (`"3"` vs `3`) so type-mismatch
/// `Indeterminate` paths get exercised.
pub fn attr_value(rng: &mut StdRng) -> AttrValue {
    match rng.gen_range(0..3) {
        0 => AttrValue::Str(STRS[rng.gen_range(0..STRS.len())].to_owned()),
        1 => AttrValue::Int(rng.gen_range(0..4)),
        _ => AttrValue::Bool(rng.gen_bool(0.5)),
    }
}

/// A random request with one to four attributes.
pub fn request(rng: &mut StdRng) -> Request {
    let mut req = Request::new();
    for _ in 0..rng.gen_range(1..=4) {
        let cat = Category::ALL[rng.gen_range(0..Category::ALL.len())];
        let name = ATTRS[rng.gen_range(0..ATTRS.len())];
        let value = attr_value(rng);
        req.set(cat, name, value);
    }
    req
}

/// A request stream with deliberate duplicates: roughly a third of the
/// entries repeat an earlier request, exercising batch dedup and both cache
/// tiers.
pub fn request_stream(rng: &mut StdRng, len: usize) -> Vec<Request> {
    let mut out: Vec<Request> = Vec::with_capacity(len);
    for _ in 0..len {
        if !out.is_empty() && rng.gen_bool(0.35) {
            let i = rng.gen_range(0..out.len());
            out.push(out[i].clone());
        } else {
            out.push(request(rng));
        }
    }
    out
}

/// A random condition tree of bounded depth covering every constructor.
pub fn cond(rng: &mut StdRng, depth: usize) -> Cond {
    let leaf = depth == 0 || rng.gen_bool(0.4);
    if leaf {
        let cat = Category::ALL[rng.gen_range(0..Category::ALL.len())];
        let attr = ATTRS[rng.gen_range(0..ATTRS.len())];
        if rng.gen_bool(0.3) {
            let values = (0..rng.gen_range(1..=3)).map(|_| attr_value(rng)).collect();
            Cond::In {
                category: cat,
                attr: attr.to_owned(),
                values,
            }
        } else {
            let ops = [
                CondOp::Eq,
                CondOp::Ne,
                CondOp::Lt,
                CondOp::Le,
                CondOp::Gt,
                CondOp::Ge,
            ];
            Cond::cmp(cat, attr, ops[rng.gen_range(0..ops.len())], attr_value(rng))
        }
    } else {
        match rng.gen_range(0..3) {
            0 => Cond::And(
                (0..rng.gen_range(1..=3))
                    .map(|_| cond(rng, depth - 1))
                    .collect(),
            ),
            1 => Cond::Or(
                (0..rng.gen_range(1..=3))
                    .map(|_| cond(rng, depth - 1))
                    .collect(),
            ),
            _ => Cond::Not(Box::new(cond(rng, depth - 1))),
        }
    }
}

/// A random combining algorithm (all three).
pub fn combining(rng: &mut StdRng) -> CombiningAlg {
    match rng.gen_range(0..3) {
        0 => CombiningAlg::DenyOverrides,
        1 => CombiningAlg::PermitOverrides,
        _ => CombiningAlg::FirstApplicable,
    }
}

/// A random order-insensitive combining algorithm (excludes
/// `FirstApplicable`, whose result depends on rule order — the
/// rule-permutation metamorphic transform is only sound without it).
pub fn order_insensitive_combining(rng: &mut StdRng) -> CombiningAlg {
    if rng.gen_bool(0.5) {
        CombiningAlg::DenyOverrides
    } else {
        CombiningAlg::PermitOverrides
    }
}

/// Obligation-id pool — deliberately tiny so generated policy sets reuse
/// ids across rules and policies, exercising first-occurrence-wins
/// deduplication in the collection semantics.
const OBLIGATION_IDS: [&str; 3] = ["ob-audit", "ob-notify", "ob-log"];

/// A random effect.
pub fn effect(rng: &mut StdRng) -> Effect {
    if rng.gen_bool(0.5) {
        Effect::Permit
    } else {
        Effect::Deny
    }
}

/// A random obligation from the small id pool. Deadlines and penalty
/// payloads vary per draw, so when two specs share an id the dedup winner
/// is observable in the collected obligation's fields.
pub fn obligation(rng: &mut StdRng) -> Obligation {
    let id = OBLIGATION_IDS[rng.gen_range(0..OBLIGATION_IDS.len())];
    let ob = Obligation::new(id, &format!("{id}-act"), rng.gen_range(1..=16u64));
    if rng.gen_bool(0.5) {
        ob.with_penalty(rng.gen_range(1..=4u32))
    } else {
        ob
    }
}

/// A random policy with `alg` combining and one to three rules (one may be
/// unconditional). Roughly a third of rules carry obligation specs — whose
/// `on` effect may deliberately disagree with the rule's own effect, so the
/// fulfill-on filter is exercised — a quarter carry penalty annotations
/// (surfacing only on contributing `Deny` rules), and a fifth of policies
/// carry a policy-level obligation.
fn policy(rng: &mut StdRng, id: usize, alg: CombiningAlg) -> Policy {
    let rules = (0..rng.gen_range(1..=3))
        .map(|j| {
            let id = format!("r{id}_{j}");
            let effect = if rng.gen_bool(0.5) {
                Effect::Permit
            } else {
                Effect::Deny
            };
            let mut rule = if rng.gen_bool(0.15) {
                PolicyRule::unconditional(&id, effect)
            } else {
                PolicyRule::new(&id, effect, cond(rng, 2))
            };
            if rng.gen_bool(0.3) {
                rule = rule.with_obligation(self::effect(rng), obligation(rng));
                if rng.gen_bool(0.3) {
                    rule = rule.with_obligation(self::effect(rng), obligation(rng));
                }
            }
            if rng.gen_bool(0.25) {
                rule = rule.with_penalty(rng.gen_range(1..=9u32));
            }
            rule
        })
        .collect();
    let mut policy = Policy::new(&format!("pol{id}"), rules).with_combining(alg);
    if rng.gen_bool(0.2) {
        policy = policy.with_obligation(effect(rng), obligation(rng));
    }
    policy
}

/// A random policy set: one to three policies plus the top-level combining
/// algorithm, with all algorithms (including order-sensitive
/// `FirstApplicable`) in play.
pub fn policy_set(rng: &mut StdRng) -> (Vec<Policy>, CombiningAlg) {
    let top = combining(rng);
    let policies = (0..rng.gen_range(1..=3))
        .map(|i| {
            let alg = combining(rng);
            policy(rng, i, alg)
        })
        .collect();
    (policies, top)
}

/// A random policy set restricted to order-insensitive combining at every
/// level, for the rule/policy-permutation metamorphic oracles.
pub fn order_insensitive_policy_set(rng: &mut StdRng) -> (Vec<Policy>, CombiningAlg) {
    let top = order_insensitive_combining(rng);
    let policies = (0..rng.gen_range(1..=3))
        .map(|i| {
            let alg = order_insensitive_combining(rng);
            policy(rng, i, alg)
        })
        .collect();
    (policies, top)
}

// ---------------------------------------------------------------------------
// Answer set grammars
// ---------------------------------------------------------------------------

/// A random right-linear grammar over the tokens `a`/`b`, kept alongside a
/// transition-table view so membership can be decided by plain NFA
/// simulation — the reference against which the Earley-plus-ASP membership
/// pipeline ([`Asg::accepts`]) is differentially tested.
#[derive(Clone, Debug)]
pub struct LinearGrammar {
    /// Productions `(lhs, token, continuation)`: `A -> tok` when the
    /// continuation is `None`, `A -> tok B` when it is `Some(B)`.
    pub prods: Vec<(usize, &'static str, Option<usize>)>,
    /// Number of nonterminals (`0` is the start symbol).
    pub n_nts: usize,
}

/// Tokens for generated right-linear grammars.
const TOKENS: [&str; 2] = ["a", "b"];

/// Generates a random right-linear grammar with two or three nonterminals,
/// each carrying one to three productions.
pub fn linear_grammar(rng: &mut StdRng) -> LinearGrammar {
    let n_nts = rng.gen_range(2..=3);
    let mut prods = Vec::new();
    for lhs in 0..n_nts {
        for _ in 0..rng.gen_range(1..=3) {
            let tok = TOKENS[rng.gen_range(0..TOKENS.len())];
            let cont = if rng.gen_bool(0.6) {
                Some(rng.gen_range(0..n_nts))
            } else {
                None
            };
            prods.push((lhs, tok, cont));
        }
    }
    LinearGrammar { prods, n_nts }
}

impl LinearGrammar {
    /// Builds the equivalent [`Asg`] (with empty annotations) through the
    /// production CFG builder.
    pub fn to_asg(&self) -> Asg {
        let mut b = CfgBuilder::new();
        b.start("n0");
        for &(lhs, tok, cont) in &self.prods {
            let lhs = format!("n{lhs}");
            let rhs = match cont {
                Some(c) => vec![t(tok), nt(&format!("n{c}"))],
                None => vec![t(tok)],
            };
            b.production(&lhs, rhs);
        }
        Asg::from_cfg(b.build().expect("every generated nonterminal is defined"))
    }

    /// Reference membership by NFA simulation: states are nonterminals, a
    /// terminal-only production accepts on the final token. The empty string
    /// is never in the language (every production consumes a token).
    pub fn accepts_ref(&self, tokens: &[&str]) -> bool {
        if tokens.is_empty() {
            return false;
        }
        let mut states: Vec<bool> = vec![false; self.n_nts];
        states[0] = true;
        for (i, tok) in tokens.iter().enumerate() {
            let last = i + 1 == tokens.len();
            let mut next = vec![false; self.n_nts];
            for &(lhs, ptok, cont) in &self.prods {
                if !states[lhs] || ptok != *tok {
                    continue;
                }
                match cont {
                    None if last => return true,
                    Some(c) => next[c] = true,
                    None => {}
                }
            }
            states = next;
            if !states.iter().any(|&s| s) {
                return false;
            }
        }
        false
    }
}

/// All token strings over `a`/`b` of length `0..=max_len`, as
/// space-separated text ready for [`Asg::accepts`].
pub fn all_strings(max_len: usize) -> Vec<Vec<&'static str>> {
    let mut out: Vec<Vec<&'static str>> = vec![Vec::new()];
    let mut frontier: Vec<Vec<&'static str>> = vec![Vec::new()];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for s in &frontier {
            for tok in TOKENS {
                let mut ext = s.clone();
                ext.push(tok);
                out.push(ext.clone());
                next.push(ext);
            }
        }
        frontier = next;
    }
    out
}
