//! Metamorphic transformation oracles.
//!
//! Each transform here comes with a semantic guarantee the test suites hold
//! the fast engines to:
//!
//! * [`permute_rules`] / [`permute_policies`] / [`permute_policy_rules`] —
//!   reordering leaves answer sets (always) and decisions (under the
//!   order-insensitive combining algorithms) unchanged. `FirstApplicable`
//!   is order-*sensitive* by specification, so the policy-side permutations
//!   are only applied to sets built by
//!   [`crate::gen::order_insensitive_policy_set`].
//! * [`rename_predicates`] — a bijective renaming of predicate symbols maps
//!   answer sets through the same bijection and changes nothing else.
//! * [`insert_inert_rules`] / [`insert_inert_policy_rules`] — adding rules
//!   that can never fire (a body over a predicate with no derivation; a
//!   policy rule whose condition is the empty disjunction, which always
//!   evaluates definitely-false and therefore `NotApplicable` under every
//!   combining algorithm) leaves answer sets and decisions untouched.
//! * [`shuffle_requests`] — reordering a request stream permutes the
//!   decision vector by exactly the same permutation.

use crate::gen::{map_program_preds, program_preds};
use crate::reference::Model;
use agenp_asp::{Atom, Literal, Program, Rule, Term};
use agenp_policy::{Cond, Effect, Policy, PolicyRule, Request};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeSet;

/// Reorders the rules of `program` uniformly at random. Stable-model
/// semantics is order-free, so answer sets must not change.
pub fn permute_rules(program: &Program, rng: &mut StdRng) -> Program {
    let mut rules: Vec<Rule> = program.rules().to_vec();
    rules.shuffle(rng);
    let mut out: Program = rules.into_iter().collect();
    for w in program.weak_constraints() {
        out.push_weak(w.clone());
    }
    out
}

/// Bijectively renames every predicate (`p` → `mm_p`) and returns the
/// mapping. Answer sets of the renamed program are the original answer
/// sets mapped through [`rename_model`].
pub fn rename_predicates(program: &Program) -> (Program, Vec<(String, String)>) {
    let mapping: Vec<(String, String)> = program_preds(program)
        .into_iter()
        .map(|s| {
            let name = s.name();
            let renamed = format!("mm_{name}");
            (name, renamed)
        })
        .collect();
    let renamed = map_program_preds(program, |name| {
        mapping
            .iter()
            .find(|(old, _)| old == name)
            .map(|(_, new)| new.clone())
            .unwrap_or_else(|| name.to_owned())
    });
    (renamed, mapping)
}

/// Maps a reference model through a predicate renaming. Works on rendered
/// atom text: the predicate is everything before the first `(` (or the
/// whole string for propositional atoms).
pub fn rename_model(model: &Model, mapping: &[(String, String)]) -> Model {
    model
        .iter()
        .map(|atom| {
            let (pred, rest) = match atom.find('(') {
                Some(i) => (&atom[..i], &atom[i..]),
                None => (atom.as_str(), ""),
            };
            match mapping.iter().find(|(old, _)| old == pred) {
                Some((_, new)) => format!("{new}{rest}"),
                None => atom.clone(),
            }
        })
        .collect::<BTreeSet<String>>()
}

/// Inserts one to three inert rules at random positions: each is
/// `mm_deadK(X) :- mm_neverK(X).` over fresh predicates with no facts and
/// no other rules, so nothing is ever derived and every answer set is
/// unchanged atom-for-atom.
pub fn insert_inert_rules(program: &Program, rng: &mut StdRng) -> Program {
    let mut rules: Vec<Rule> = program.rules().to_vec();
    for k in 0..rng.gen_range(1..=3) {
        let head = Atom::new(format!("mm_dead{k}").as_str(), vec![Term::var("X")]);
        let body = vec![Literal::Pos(Atom::new(
            format!("mm_never{k}").as_str(),
            vec![Term::var("X")],
        ))];
        let at = rng.gen_range(0..=rules.len());
        rules.insert(at, Rule::new(head, body));
    }
    let mut out: Program = rules.into_iter().collect();
    for w in program.weak_constraints() {
        out.push_weak(w.clone());
    }
    out
}

/// Reorders the policy list. Sound only under order-insensitive top-level
/// combining (deny-/permit-overrides).
pub fn permute_policies(policies: &[Policy], rng: &mut StdRng) -> Vec<Policy> {
    let mut out = policies.to_vec();
    out.shuffle(rng);
    out
}

/// Reorders the rules inside each policy. Sound only when every policy
/// uses an order-insensitive combining algorithm.
pub fn permute_policy_rules(policies: &[Policy], rng: &mut StdRng) -> Vec<Policy> {
    policies
        .iter()
        .map(|p| {
            let mut rules = p.rules.clone();
            rules.shuffle(rng);
            Policy {
                id: p.id.clone(),
                rules,
                combining: p.combining,
                obligations: p.obligations.clone(),
            }
        })
        .collect()
}

/// Inserts an inert rule into each policy at a random position: its
/// condition is the empty disjunction `Or([])`, which evaluates
/// definitely-false on every request, so the rule renders `NotApplicable`
/// and is the combining identity under **all** algorithms (including
/// `FirstApplicable`, which skips `NotApplicable` rules).
pub fn insert_inert_policy_rules(policies: &[Policy], rng: &mut StdRng) -> Vec<Policy> {
    policies
        .iter()
        .map(|p| {
            let mut rules = p.rules.clone();
            let effect = if rng.gen_bool(0.5) {
                Effect::Permit
            } else {
                Effect::Deny
            };
            let inert = PolicyRule::new(&format!("{}_inert", p.id), effect, Cond::Or(Vec::new()));
            let at = rng.gen_range(0..=rules.len());
            rules.insert(at, inert);
            Policy {
                id: p.id.clone(),
                rules,
                combining: p.combining,
                obligations: p.obligations.clone(),
            }
        })
        .collect()
}

/// Shuffles a request stream, returning the permuted stream together with
/// the permutation (`out[i] == requests[perm[i]]`) so decision vectors can
/// be compared element-for-element.
pub fn shuffle_requests(requests: &[Request], rng: &mut StdRng) -> (Vec<Request>, Vec<usize>) {
    let mut perm: Vec<usize> = (0..requests.len()).collect();
    perm.shuffle(rng);
    let out = perm.iter().map(|&i| requests[i].clone()).collect();
    (out, perm)
}
