//! # agenp-refsem — reference semantics and generative oracles
//!
//! The fast engines in this workspace (the semi-naive indexed grounder, the
//! stable-model solver, the snapshot/cache PDP serving tier) exist to be
//! rewritten: every optimization on the roadmap rewrites a hot internal, and
//! the paper's central claim — learned generative policies render the *same*
//! decisions as the intended policy set — makes semantic drift the one
//! unacceptable regression. This crate is the drift detector. It follows the
//! small-trusted-checker pattern: a deliberately naive evaluator, written for
//! obviousness rather than speed, is kept permanently alongside the fast
//! engine and cross-examined against it on thousands of generated cases.
//!
//! Three pillars:
//!
//! * [`gen`] — **seeded generators** for safe stratified ASP programs,
//!   right-linear answer set grammars, XACML-style policy sets, and request
//!   streams. All randomness flows through the deterministic offline `rand`
//!   shim, so a case is fully reproduced by one `u64` seed.
//! * [`reference`](mod@reference) — the **reference evaluator**: naive full-universe
//!   grounding, a stratum-by-stratum perfect-model fixpoint, a brute-force
//!   stable-model check by subset enumeration, and a straight-line reference
//!   PDP `decide`. No indices, no caches, no sharing with the fast paths.
//! * [`metamorphic`] + [`diff`] — **transformation oracles** (predicate
//!   renaming, rule permutation, inert-rule insertion, request reordering)
//!   that must leave answer sets and decisions unchanged, and the seeded
//!   differential case runners used by both the `tests/` suites and the
//!   `fuzz` bench binary. PDP cases compare the full
//!   [`DecisionEffects`](agenp_policy::DecisionEffects) — decision,
//!   obligations, penalty — through all four serving paths against
//!   [`reference::effects_reference`]. Every failure message leads with
//!   the seed that reproduces it, and mismatches are first
//!   [`shrink`]-minimized to the smallest failing rule subset / policy
//!   set / request stream.
//!
//! ```
//! // Differential check on one seed: fast grounder+solver vs the naive
//! // reference evaluator, and the serving tier vs the reference PDP.
//! agenp_refsem::diff::run_asp_case(7).unwrap();
//! agenp_refsem::diff::run_pdp_case(7).unwrap();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod diff;
pub mod gen;
pub mod metamorphic;
pub mod reference;
pub mod shrink;

pub use diff::{
    run_asg_case, run_asp_case, run_metamorphic_asp_case, run_metamorphic_pdp_case, run_pdp_case,
};
pub use reference::Model;
