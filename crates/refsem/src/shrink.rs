//! Delta-debugging shrinker for differential failures.
//!
//! A failing fuzz case regenerates from its seed, but the regenerated
//! artifacts — a whole stratified program, a policy set, a dozen-request
//! stream — are mostly irrelevant to the mismatch. [`shrink_items`]
//! binary-searches a failing sequence down before the repro line is
//! printed: it repeatedly tries dropping contiguous chunks (halves, then
//! quarters, down to single elements), keeping any removal under which
//! the failure persists, and finishes with single-element passes until a
//! fixpoint. The result is 1-minimal: no single remaining element can be
//! removed without losing the failure (unless the check budget ran out
//! first).
//!
//! The shrinker only ever runs on the failure path, so its cost is paid
//! exactly when a human is about to debug the case — and the budget keeps
//! even a pathological predicate from stalling the harness.

/// Upper bound on predicate invocations per [`shrink_items`] call. Each
/// check can replay a full solver or serving-tier run; the bound keeps the
/// failure path snappy while still minimizing every realistically sized
/// generated case.
const MAX_CHECKS: usize = 512;

/// Shrinks `items` to a smaller sequence on which `still_fails` still
/// returns `true`, assuming it returns `true` for `items` itself. Chunks
/// of decreasing size are speculatively removed; a removal is kept iff the
/// failure persists. Relative order of the survivors is preserved. If
/// `still_fails(items)` is `false` the input comes back unchanged.
pub fn shrink_items<T: Clone>(items: &[T], still_fails: &mut dyn FnMut(&[T]) -> bool) -> Vec<T> {
    let mut cur: Vec<T> = items.to_vec();
    let mut checks = 0usize;
    let mut chunk = (cur.len().div_ceil(2)).max(1);
    loop {
        let mut reduced = false;
        let mut start = 0;
        while start < cur.len() {
            if checks >= MAX_CHECKS {
                return cur;
            }
            let end = (start + chunk).min(cur.len());
            let mut candidate = Vec::with_capacity(cur.len() - (end - start));
            candidate.extend_from_slice(&cur[..start]);
            candidate.extend_from_slice(&cur[end..]);
            checks += 1;
            if still_fails(&candidate) {
                // Keep the removal and retest at the same offset: the
                // next chunk has slid into this position.
                cur = candidate;
                reduced = true;
            } else {
                start = end;
            }
        }
        if chunk == 1 {
            if !reduced {
                return cur;
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_minimal_failing_pair() {
        let items: Vec<u32> = (0..32).collect();
        let mut fails = |s: &[u32]| s.contains(&3) && s.contains(&17);
        assert_eq!(shrink_items(&items, &mut fails), vec![3, 17]);
    }

    #[test]
    fn shrinks_to_a_single_culprit() {
        let items: Vec<u32> = (0..100).collect();
        let mut fails = |s: &[u32]| s.contains(&77);
        assert_eq!(shrink_items(&items, &mut fails), vec![77]);
    }

    #[test]
    fn vacuous_failures_shrink_to_empty() {
        let items = vec![1, 2, 3];
        let mut fails = |_: &[i32]| true;
        assert_eq!(shrink_items(&items, &mut fails), Vec::<i32>::new());
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let items = vec![1, 2, 3];
        let mut fails = |s: &[i32]| s.len() > 3;
        assert_eq!(shrink_items(&items, &mut fails), items);
    }

    #[test]
    fn result_is_one_minimal_and_order_preserving() {
        let items: Vec<u32> = (0..24).collect();
        // Fails iff at least three even numbers survive.
        let mut fails = |s: &[u32]| s.iter().filter(|&&x| x % 2 == 0).count() >= 3;
        let shrunk = shrink_items(&items, &mut fails);
        assert_eq!(shrunk.len(), 3);
        assert!(shrunk.iter().all(|&x| x % 2 == 0));
        assert!(shrunk.windows(2).all(|w| w[0] < w[1]));
        // 1-minimality: dropping any one element loses the failure.
        for i in 0..shrunk.len() {
            let mut fewer = shrunk.clone();
            fewer.remove(i);
            assert!(!fails(&fewer));
        }
    }
}
