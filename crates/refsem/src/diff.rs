//! Seeded differential case runners.
//!
//! Each `run_*_case(seed)` function regenerates its whole case from the
//! seed, runs the fast engine and the reference side by side, and returns
//! `Err` with a message that **leads with the seed** — the one-line repro
//! contract: paste the seed back into the same function to replay the
//! failure. The `tests/` suites and the `fuzz` bench binary both drive
//! these runners; nothing else needs to know how a case is built.

use crate::gen;
use crate::metamorphic;
use crate::reference::{self, Model};
use agenp_asp::{Program, Solver};
use agenp_core::arch::{DecisionSnapshot, PdpHandle};
use agenp_policy::{CombiningAlg, Decision, Policy, Request};
use std::collections::BTreeSet;

/// Brute-force budget: at most this many non-fact candidate atoms before
/// the subset enumeration (2^n Gelfond–Lifschitz checks) is skipped.
const BRUTE_FORCE_MAX_EXTRA: usize = 10;

/// The fast engine's answer sets in reference form: each model a sorted set
/// of rendered atoms, the list of models itself sorted.
pub fn fast_models(program: &Program) -> Result<Vec<Model>, String> {
    let result = Solver::new()
        .solve_program(program)
        .map_err(|e| format!("fast engine failed to ground: {e:?}"))?;
    if !result.complete() {
        return Err("fast engine did not complete enumeration".to_owned());
    }
    let mut models: Vec<Model> = result
        .models()
        .iter()
        .map(|m| {
            m.atoms()
                .iter()
                .map(reference::render)
                .collect::<BTreeSet<String>>()
        })
        .collect();
    models.sort();
    Ok(models)
}

/// Differential ASP case: generated stratified program, fast
/// grounder+solver vs the stratified perfect-model reference, and (when
/// the candidate space is small enough) vs brute-force stable-model
/// enumeration as a second, independent reference.
pub fn run_asp_case(seed: u64) -> Result<(), String> {
    let ctx = |msg: String| format!("seed={seed} kind=asp: {msg} (repro: run_asp_case({seed}))");
    let mut rng = gen::rng_for(seed);
    let program = gen::stratified_program(&mut rng);
    let fast = fast_models(&program).map_err(&ctx)?;
    let reference = reference::stable_models_stratified(&program)
        .ok_or_else(|| ctx("generated program is not stratified".to_owned()))?;
    if fast != reference {
        return Err(ctx(format!(
            "fast {fast:?} != stratified reference {reference:?} for program:\n{program}"
        )));
    }
    if let Some(brute) = reference::stable_models_bruteforce(&program, BRUTE_FORCE_MAX_EXTRA) {
        if fast != brute {
            return Err(ctx(format!(
                "fast {fast:?} != brute-force reference {brute:?} for program:\n{program}"
            )));
        }
    }
    Ok(())
}

/// Renders a request stream's decisions through every serving path — handle
/// singles, handle batch, pin singles, pin batch — under one published
/// snapshot, checks the four paths agree (including that every outcome
/// carries the published epoch), and returns the agreed decision vector.
pub fn decisions_via_all_paths(
    policies: &[Policy],
    combining: CombiningAlg,
    stream: &[Request],
) -> Result<Vec<Decision>, String> {
    let handle = PdpHandle::new();
    let epoch = handle.publish(DecisionSnapshot::new(policies.to_vec(), combining));
    let singles: Vec<Decision> = stream
        .iter()
        .map(|r| {
            let o = handle.decide(r);
            if o.epoch != epoch {
                return Err(format!("decide epoch {} != published {epoch}", o.epoch));
            }
            Ok(o.decision)
        })
        .collect::<Result<_, String>>()?;
    let batch = handle.decide_batch(stream);
    for (i, o) in batch.iter().enumerate() {
        if o.epoch != epoch {
            return Err(format!(
                "decide_batch[{i}] epoch {} != published {epoch}",
                o.epoch
            ));
        }
        if o.decision != singles[i] {
            return Err(format!(
                "decide_batch[{i}] {:?} != decide {:?}",
                o.decision, singles[i]
            ));
        }
    }
    let mut pin = handle.pin();
    for (i, r) in stream.iter().enumerate() {
        let o = pin.decide(r);
        if o.decision != singles[i] {
            return Err(format!(
                "pin.decide[{i}] {:?} != decide {:?}",
                o.decision, singles[i]
            ));
        }
    }
    let mut pin = handle.pin();
    let pin_batch = pin.decide_batch(stream);
    for (i, o) in pin_batch.iter().enumerate() {
        if o.decision != singles[i] {
            return Err(format!(
                "pin.decide_batch[{i}] {:?} != decide {:?}",
                o.decision, singles[i]
            ));
        }
    }
    Ok(singles)
}

/// Differential PDP case: generated policy set and duplicate-bearing
/// request stream; every serving path (shared cache hot and cold, pin
/// caches, batch dedup) must match the straight-line reference `decide`.
pub fn run_pdp_case(seed: u64) -> Result<(), String> {
    let ctx = |msg: String| format!("seed={seed} kind=pdp: {msg} (repro: run_pdp_case({seed}))");
    let mut rng = gen::rng_for(seed);
    let (policies, combining) = gen::policy_set(&mut rng);
    let stream = gen::request_stream(&mut rng, 12);
    let expected: Vec<Decision> = stream
        .iter()
        .map(|r| reference::decide_reference(&policies, combining, r))
        .collect();
    let served = decisions_via_all_paths(&policies, combining, &stream).map_err(&ctx)?;
    for (i, (got, want)) in served.iter().zip(&expected).enumerate() {
        if got != want {
            return Err(ctx(format!(
                "request[{i}] served {got:?} != reference {want:?} (key {})",
                stream[i].canonical_key()
            )));
        }
    }
    Ok(())
}

/// Differential ASG case: generated right-linear grammar; the
/// Earley-plus-ASP membership pipeline must agree with plain NFA
/// simulation on every string over the token alphabet up to length 4.
pub fn run_asg_case(seed: u64) -> Result<(), String> {
    let ctx = |msg: String| format!("seed={seed} kind=asg: {msg} (repro: run_asg_case({seed}))");
    let mut rng = gen::rng_for(seed);
    let grammar = gen::linear_grammar(&mut rng);
    let asg = grammar.to_asg();
    for tokens in gen::all_strings(4) {
        let text = tokens.join(" ");
        let fast = asg
            .accepts(&text)
            .map_err(|e| ctx(format!("accepts({text:?}) errored: {e:?}")))?;
        let reference = grammar.accepts_ref(&tokens);
        if fast != reference {
            return Err(ctx(format!(
                "accepts({text:?}) = {fast} but reference NFA says {reference} for {grammar:?}"
            )));
        }
    }
    Ok(())
}

/// Metamorphic ASP case: rule permutation and inert-rule insertion must
/// leave answer sets unchanged; bijective predicate renaming must map them
/// through exactly that bijection.
pub fn run_metamorphic_asp_case(seed: u64) -> Result<(), String> {
    let ctx = |msg: String| {
        format!("seed={seed} kind=mm-asp: {msg} (repro: run_metamorphic_asp_case({seed}))")
    };
    let mut rng = gen::rng_for(seed);
    let program = gen::stratified_program(&mut rng);
    let base = fast_models(&program).map_err(&ctx)?;

    let permuted = metamorphic::permute_rules(&program, &mut rng);
    let permuted_models = fast_models(&permuted).map_err(&ctx)?;
    if permuted_models != base {
        return Err(ctx(format!(
            "rule permutation changed answer sets: {base:?} -> {permuted_models:?}"
        )));
    }

    let padded = metamorphic::insert_inert_rules(&program, &mut rng);
    let padded_models = fast_models(&padded).map_err(&ctx)?;
    if padded_models != base {
        return Err(ctx(format!(
            "inert-rule insertion changed answer sets: {base:?} -> {padded_models:?}"
        )));
    }

    let (renamed, mapping) = metamorphic::rename_predicates(&program);
    let renamed_models = fast_models(&renamed).map_err(&ctx)?;
    let mut expected: Vec<Model> = base
        .iter()
        .map(|m| metamorphic::rename_model(m, &mapping))
        .collect();
    expected.sort();
    if renamed_models != expected {
        return Err(ctx(format!(
            "predicate renaming broke the model bijection: expected {expected:?}, got {renamed_models:?}"
        )));
    }
    Ok(())
}

/// Metamorphic PDP case, proven through **both** `decide` and
/// `decide_batch` (and the pin variants) via [`decisions_via_all_paths`]:
/// inert-rule insertion and request reordering preserve decisions under
/// every combining algorithm; policy and rule permutation preserve them
/// under the order-insensitive algorithms.
pub fn run_metamorphic_pdp_case(seed: u64) -> Result<(), String> {
    let ctx = |msg: String| {
        format!("seed={seed} kind=mm-pdp: {msg} (repro: run_metamorphic_pdp_case({seed}))")
    };
    let mut rng = gen::rng_for(seed);

    // All combining algorithms: inert insertion and request reordering.
    let (policies, combining) = gen::policy_set(&mut rng);
    let stream = gen::request_stream(&mut rng, 10);
    let base = decisions_via_all_paths(&policies, combining, &stream).map_err(&ctx)?;

    let padded = metamorphic::insert_inert_policy_rules(&policies, &mut rng);
    let padded_decisions = decisions_via_all_paths(&padded, combining, &stream).map_err(&ctx)?;
    if padded_decisions != base {
        return Err(ctx(format!(
            "inert policy rule changed decisions: {base:?} -> {padded_decisions:?}"
        )));
    }

    let (shuffled, perm) = metamorphic::shuffle_requests(&stream, &mut rng);
    let shuffled_decisions =
        decisions_via_all_paths(&policies, combining, &shuffled).map_err(&ctx)?;
    for (i, &src) in perm.iter().enumerate() {
        if shuffled_decisions[i] != base[src] {
            return Err(ctx(format!(
                "request reordering changed a decision: position {i} (source {src}) \
                 {:?} != {:?}",
                shuffled_decisions[i], base[src]
            )));
        }
    }

    // Order-insensitive algorithms only: permutations.
    let (oi_policies, oi_combining) = gen::order_insensitive_policy_set(&mut rng);
    let oi_base = decisions_via_all_paths(&oi_policies, oi_combining, &stream).map_err(&ctx)?;
    let policy_perm = metamorphic::permute_policies(&oi_policies, &mut rng);
    let policy_perm_decisions =
        decisions_via_all_paths(&policy_perm, oi_combining, &stream).map_err(&ctx)?;
    if policy_perm_decisions != oi_base {
        return Err(ctx(format!(
            "policy permutation changed decisions: {oi_base:?} -> {policy_perm_decisions:?}"
        )));
    }
    let rule_perm = metamorphic::permute_policy_rules(&oi_policies, &mut rng);
    let rule_perm_decisions =
        decisions_via_all_paths(&rule_perm, oi_combining, &stream).map_err(&ctx)?;
    if rule_perm_decisions != oi_base {
        return Err(ctx(format!(
            "rule permutation changed decisions: {oi_base:?} -> {rule_perm_decisions:?}"
        )));
    }
    Ok(())
}
