//! Seeded differential case runners.
//!
//! Each `run_*_case(seed)` function regenerates its whole case from the
//! seed, runs the fast engine and the reference side by side, and returns
//! `Err` with a message that **leads with the seed** — the one-line repro
//! contract: paste the seed back into the same function to replay the
//! failure. The `tests/` suites and the `fuzz` bench binary both drive
//! these runners; nothing else needs to know how a case is built.

use crate::gen;
use crate::metamorphic;
use crate::reference::{self, Model};
use crate::shrink;
use agenp_asp::{Program, Rule, Solver};
use agenp_core::arch::{DecisionSnapshot, PdpHandle};
use agenp_policy::{CombiningAlg, DecisionEffects, Policy, Request};
use std::collections::BTreeSet;

/// Brute-force budget: at most this many non-fact candidate atoms before
/// the subset enumeration (2^n Gelfond–Lifschitz checks) is skipped.
const BRUTE_FORCE_MAX_EXTRA: usize = 10;

/// The fast engine's answer sets in reference form: each model a sorted set
/// of rendered atoms, the list of models itself sorted.
pub fn fast_models(program: &Program) -> Result<Vec<Model>, String> {
    let result = Solver::new()
        .solve_program(program)
        .map_err(|e| format!("fast engine failed to ground: {e:?}"))?;
    if !result.complete() {
        return Err("fast engine did not complete enumeration".to_owned());
    }
    let mut models: Vec<Model> = result
        .models()
        .iter()
        .map(|m| {
            m.atoms()
                .iter()
                .map(reference::render)
                .collect::<BTreeSet<String>>()
        })
        .collect();
    models.sort();
    Ok(models)
}

/// Differential ASP case: generated stratified program, fast
/// grounder+solver vs the stratified perfect-model reference, and (when
/// the candidate space is small enough) vs brute-force stable-model
/// enumeration as a second, independent reference.
pub fn run_asp_case(seed: u64) -> Result<(), String> {
    let ctx = |msg: String| format!("seed={seed} kind=asp: {msg} (repro: run_asp_case({seed}))");
    let mut rng = gen::rng_for(seed);
    let program = gen::stratified_program(&mut rng);
    let fast = fast_models(&program).map_err(&ctx)?;
    let reference = reference::stable_models_stratified(&program)
        .ok_or_else(|| ctx("generated program is not stratified".to_owned()))?;
    if fast != reference {
        return Err(ctx(format!(
            "fast {fast:?} != stratified reference {reference:?} for program:\n{program}\n{}",
            shrunk_asp_repro(&program)
        )));
    }
    if let Some(brute) = reference::stable_models_bruteforce(&program, BRUTE_FORCE_MAX_EXTRA) {
        if fast != brute {
            return Err(ctx(format!(
                "fast {fast:?} != brute-force reference {brute:?} for program:\n{program}\n{}",
                shrunk_asp_repro(&program)
            )));
        }
    }
    Ok(())
}

/// A program rebuilt from a rule subset (facts and rules only — the
/// generators emit no weak constraints).
fn program_from(rules: &[Rule]) -> Program {
    let mut p = Program::new();
    for r in rules {
        p.push(r.clone());
    }
    p
}

/// True if the fast engine still disagrees with either reference on this
/// program. Engine errors and non-stratified subsets are *not* failures —
/// the shrinker must preserve the original mismatch, not trade it for a
/// different breakage.
fn asp_mismatch(program: &Program) -> bool {
    let Ok(fast) = fast_models(program) else {
        return false;
    };
    let Some(reference) = reference::stable_models_stratified(program) else {
        return false;
    };
    if fast != reference {
        return true;
    }
    match reference::stable_models_bruteforce(program, BRUTE_FORCE_MAX_EXTRA) {
        Some(brute) => fast != brute,
        None => false,
    }
}

/// Binary-searches a mismatching program down to a minimal failing rule
/// subset and renders it for the repro message.
fn shrunk_asp_repro(program: &Program) -> String {
    let rules = program.rules().to_vec();
    let minimal = shrink::shrink_items(&rules, &mut |subset| asp_mismatch(&program_from(subset)));
    format!(
        "shrunk to {} of {} rule(s):\n{}",
        minimal.len(),
        rules.len(),
        program_from(&minimal)
    )
}

/// Renders a request stream's decisions through every serving path — handle
/// singles, handle batch, pin singles, pin batch — under one published
/// snapshot, checks the four paths agree on the **full**
/// [`DecisionEffects`] (decision, obligation vector, penalty — and that
/// every outcome carries the published epoch), and returns the agreed
/// effects vector.
pub fn decisions_via_all_paths(
    policies: &[Policy],
    combining: CombiningAlg,
    stream: &[Request],
) -> Result<Vec<DecisionEffects>, String> {
    let handle = PdpHandle::new();
    let epoch = handle.publish(DecisionSnapshot::new(policies.to_vec(), combining));
    let singles: Vec<DecisionEffects> = stream
        .iter()
        .map(|r| {
            let o = handle.decide(r);
            if o.epoch != epoch {
                return Err(format!("decide epoch {} != published {epoch}", o.epoch));
            }
            Ok(o.effects())
        })
        .collect::<Result<_, String>>()?;
    let batch = handle.decide_batch(stream);
    for (i, o) in batch.iter().enumerate() {
        if o.epoch != epoch {
            return Err(format!(
                "decide_batch[{i}] epoch {} != published {epoch}",
                o.epoch
            ));
        }
        if o.effects() != singles[i] {
            return Err(format!(
                "decide_batch[{i}] {:?} != decide {:?}",
                o.effects(),
                singles[i]
            ));
        }
    }
    let mut pin = handle.pin();
    for (i, r) in stream.iter().enumerate() {
        let o = pin.decide(r);
        if o.effects() != singles[i] {
            return Err(format!(
                "pin.decide[{i}] {:?} != decide {:?}",
                o.effects(),
                singles[i]
            ));
        }
    }
    let mut pin = handle.pin();
    let pin_batch = pin.decide_batch(stream);
    for (i, o) in pin_batch.iter().enumerate() {
        if o.effects() != singles[i] {
            return Err(format!(
                "pin.decide_batch[{i}] {:?} != decide {:?}",
                o.effects(),
                singles[i]
            ));
        }
    }
    Ok(singles)
}

/// Differential PDP case: generated policy set (obligation- and
/// penalty-bearing) and duplicate-bearing request stream; every serving
/// path (shared cache hot and cold, pin caches, batch dedup) must match
/// the straight-line reference [`reference::effects_reference`] on the
/// full decision-plus-obligations-plus-penalty effects. Any mismatch is
/// shrunk to a minimal failing case before the repro line prints.
pub fn run_pdp_case(seed: u64) -> Result<(), String> {
    let ctx = |msg: String| format!("seed={seed} kind=pdp: {msg} (repro: run_pdp_case({seed}))");
    let mut rng = gen::rng_for(seed);
    let (policies, combining) = gen::policy_set(&mut rng);
    let stream = gen::request_stream(&mut rng, 12);
    let served = match decisions_via_all_paths(&policies, combining, &stream) {
        Ok(served) => served,
        Err(msg) => {
            return Err(ctx(format!(
                "{msg}\n{}",
                shrunk_pdp_repro(&policies, combining, &stream)
            )))
        }
    };
    for (i, (got, request)) in served.iter().zip(&stream).enumerate() {
        let want = reference::effects_reference(&policies, combining, request);
        if *got != want {
            return Err(ctx(format!(
                "request[{i}] served {got:?} != reference {want:?} (key {})\n{}",
                request.canonical_key(),
                shrunk_pdp_repro(&policies, combining, &stream)
            )));
        }
    }
    Ok(())
}

/// True if the serving paths still disagree among themselves or with the
/// reference effects evaluator on this (policy set, stream) pair.
fn pdp_mismatch(policies: &[Policy], combining: CombiningAlg, stream: &[Request]) -> bool {
    match decisions_via_all_paths(policies, combining, stream) {
        Err(_) => true,
        Ok(served) => served
            .iter()
            .zip(stream)
            .any(|(got, r)| *got != reference::effects_reference(policies, combining, r)),
    }
}

/// Binary-searches a mismatching PDP case down: the request stream first
/// (the cheapest axis — duplicates and cache warm-up usually drop out),
/// then whole policies, then the rules inside each surviving policy, each
/// axis shrunk while the others are held fixed.
fn shrunk_pdp_repro(policies: &[Policy], combining: CombiningAlg, stream: &[Request]) -> String {
    let (n_policies, n_requests) = (policies.len(), stream.len());
    let stream = shrink::shrink_items(stream, &mut |s| pdp_mismatch(policies, combining, s));
    let mut policies = shrink::shrink_items(policies, &mut |p| pdp_mismatch(p, combining, &stream));
    for i in 0..policies.len() {
        let base = policies.clone();
        let rules = shrink::shrink_items(&policies[i].rules, &mut |rules| {
            let mut ps = base.clone();
            ps[i].rules = rules.to_vec();
            pdp_mismatch(&ps, combining, &stream)
        });
        policies[i].rules = rules;
    }
    let keys: Vec<String> = stream.iter().map(Request::canonical_key).collect();
    format!(
        "shrunk to {} of {n_policies} polic(ies), {} of {n_requests} request(s):\n  \
         policies: {policies:?}\n  requests: {keys:?}",
        policies.len(),
        keys.len()
    )
}

/// Differential ASG case: generated right-linear grammar; the
/// Earley-plus-ASP membership pipeline must agree with plain NFA
/// simulation on every string over the token alphabet up to length 4.
pub fn run_asg_case(seed: u64) -> Result<(), String> {
    let ctx = |msg: String| format!("seed={seed} kind=asg: {msg} (repro: run_asg_case({seed}))");
    let mut rng = gen::rng_for(seed);
    let grammar = gen::linear_grammar(&mut rng);
    let asg = grammar.to_asg();
    for tokens in gen::all_strings(4) {
        let text = tokens.join(" ");
        let fast = asg
            .accepts(&text)
            .map_err(|e| ctx(format!("accepts({text:?}) errored: {e:?}")))?;
        let reference = grammar.accepts_ref(&tokens);
        if fast != reference {
            return Err(ctx(format!(
                "accepts({text:?}) = {fast} but reference NFA says {reference} for {grammar:?}"
            )));
        }
    }
    Ok(())
}

/// Metamorphic ASP case: rule permutation and inert-rule insertion must
/// leave answer sets unchanged; bijective predicate renaming must map them
/// through exactly that bijection.
pub fn run_metamorphic_asp_case(seed: u64) -> Result<(), String> {
    let ctx = |msg: String| {
        format!("seed={seed} kind=mm-asp: {msg} (repro: run_metamorphic_asp_case({seed}))")
    };
    let mut rng = gen::rng_for(seed);
    let program = gen::stratified_program(&mut rng);
    let base = fast_models(&program).map_err(&ctx)?;

    let permuted = metamorphic::permute_rules(&program, &mut rng);
    let permuted_models = fast_models(&permuted).map_err(&ctx)?;
    if permuted_models != base {
        return Err(ctx(format!(
            "rule permutation changed answer sets: {base:?} -> {permuted_models:?}"
        )));
    }

    let padded = metamorphic::insert_inert_rules(&program, &mut rng);
    let padded_models = fast_models(&padded).map_err(&ctx)?;
    if padded_models != base {
        return Err(ctx(format!(
            "inert-rule insertion changed answer sets: {base:?} -> {padded_models:?}"
        )));
    }

    let (renamed, mapping) = metamorphic::rename_predicates(&program);
    let renamed_models = fast_models(&renamed).map_err(&ctx)?;
    let mut expected: Vec<Model> = base
        .iter()
        .map(|m| metamorphic::rename_model(m, &mapping))
        .collect();
    expected.sort();
    if renamed_models != expected {
        return Err(ctx(format!(
            "predicate renaming broke the model bijection: expected {expected:?}, got {renamed_models:?}"
        )));
    }
    Ok(())
}

/// Order-insensitive effects equivalence for the permutation oracles.
/// Obligation *order* and the first-wins dedup winner follow policy/rule
/// order by construction, so permuting policies or rules may legitimately
/// reorder the obligation vector and swap which same-id spec survives —
/// but the decision, the penalty (a max over contributors), and the
/// obligation id *set* must all be invariant.
fn effects_equiv_unordered(a: &DecisionEffects, b: &DecisionEffects) -> bool {
    fn ids(fx: &DecisionEffects) -> BTreeSet<&str> {
        fx.obligations.iter().map(|o| o.id.as_str()).collect()
    }
    a.decision == b.decision && a.penalty == b.penalty && ids(a) == ids(b)
}

/// Metamorphic PDP case, proven through **both** `decide` and
/// `decide_batch` (and the pin variants) via [`decisions_via_all_paths`]:
/// inert-rule insertion and request reordering preserve the full decision
/// effects under every combining algorithm; policy and rule permutation
/// preserve the decision, penalty, and obligation id set under the
/// order-insensitive algorithms (but not the obligation *vector*:
/// collection order and the dedup winner's payload follow policy/rule
/// order by specification, so only the id set is permutation-invariant).
pub fn run_metamorphic_pdp_case(seed: u64) -> Result<(), String> {
    let ctx = |msg: String| {
        format!("seed={seed} kind=mm-pdp: {msg} (repro: run_metamorphic_pdp_case({seed}))")
    };
    let mut rng = gen::rng_for(seed);

    // All combining algorithms: inert insertion and request reordering.
    let (policies, combining) = gen::policy_set(&mut rng);
    let stream = gen::request_stream(&mut rng, 10);
    let base = decisions_via_all_paths(&policies, combining, &stream).map_err(&ctx)?;

    let padded = metamorphic::insert_inert_policy_rules(&policies, &mut rng);
    let padded_decisions = decisions_via_all_paths(&padded, combining, &stream).map_err(&ctx)?;
    if padded_decisions != base {
        return Err(ctx(format!(
            "inert policy rule changed decisions: {base:?} -> {padded_decisions:?}"
        )));
    }

    let (shuffled, perm) = metamorphic::shuffle_requests(&stream, &mut rng);
    let shuffled_decisions =
        decisions_via_all_paths(&policies, combining, &shuffled).map_err(&ctx)?;
    for (i, &src) in perm.iter().enumerate() {
        if shuffled_decisions[i] != base[src] {
            return Err(ctx(format!(
                "request reordering changed a decision: position {i} (source {src}) \
                 {:?} != {:?}",
                shuffled_decisions[i], base[src]
            )));
        }
    }

    // Order-insensitive algorithms only: permutations.
    let (oi_policies, oi_combining) = gen::order_insensitive_policy_set(&mut rng);
    let oi_base = decisions_via_all_paths(&oi_policies, oi_combining, &stream).map_err(&ctx)?;
    let policy_perm = metamorphic::permute_policies(&oi_policies, &mut rng);
    let policy_perm_decisions =
        decisions_via_all_paths(&policy_perm, oi_combining, &stream).map_err(&ctx)?;
    if !policy_perm_decisions
        .iter()
        .zip(&oi_base)
        .all(|(a, b)| effects_equiv_unordered(a, b))
    {
        return Err(ctx(format!(
            "policy permutation changed decisions: {oi_base:?} -> {policy_perm_decisions:?}"
        )));
    }
    let rule_perm = metamorphic::permute_policy_rules(&oi_policies, &mut rng);
    let rule_perm_decisions =
        decisions_via_all_paths(&rule_perm, oi_combining, &stream).map_err(&ctx)?;
    if !rule_perm_decisions
        .iter()
        .zip(&oi_base)
        .all(|(a, b)| effects_equiv_unordered(a, b))
    {
        return Err(ctx(format!(
            "rule permutation changed decisions: {oi_base:?} -> {rule_perm_decisions:?}"
        )));
    }
    Ok(())
}
