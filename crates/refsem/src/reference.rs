//! The slow-but-obviously-correct reference evaluator.
//!
//! Everything in this module trades speed for reviewability: full-universe
//! naive grounding by cartesian enumeration, a stratum-by-stratum
//! perfect-model fixpoint, stable models by brute-force subset enumeration
//! against the Gelfond–Lifschitz reduct, and a straight-line reimplementation
//! of the XACML decision pipeline. None of it shares indices, caches, or
//! evaluation order with the fast engines it cross-examines — ground atoms
//! are compared by their rendered text, models are plain `BTreeSet<String>`s.
//!
//! Scope: the generated fragment of [`crate::gen`] — no arithmetic
//! assignments (`Z = X + 1` can mint values outside the constant universe,
//! which full-universe enumeration would miss) and no weak constraints.

use agenp_asp::{Atom, Bindings, Literal, Program, Rule, Symbol, Term};
use agenp_policy::{
    CombiningAlg, Cond, Decision, DecisionEffects, Obligation, Policy, PolicyRule, Request,
};
use std::collections::{BTreeSet, HashMap};

/// A reference answer set: the rendered text of every ground atom in it.
pub type Model = BTreeSet<String>;

/// A ground rule in reference form: rendered head (None for a constraint),
/// positive body atoms, negative body atoms. Comparison literals are
/// resolved away during grounding.
#[derive(Clone, Debug)]
pub struct GroundRuleRef {
    /// Rendered head atom; `None` marks an integrity constraint.
    pub head: Option<String>,
    /// Predicate of the head, for stratum lookup.
    pub head_pred: Option<Symbol>,
    /// Rendered positive body atoms.
    pub pos: Vec<String>,
    /// Rendered negative body atoms.
    pub neg: Vec<String>,
}

/// Every ground constant term appearing anywhere in the program — the
/// Herbrand universe of the arithmetic-free fragment.
pub fn universe(program: &Program) -> Vec<Term> {
    let mut out: Vec<Term> = Vec::new();
    let mut push = |t: &Term| {
        if t.is_ground() && !out.contains(t) {
            out.push(t.clone());
        }
    };
    let mut push_term = |t: &Term| match t {
        Term::Int(_) | Term::Sym(_) => push(t),
        _ => {}
    };
    for rule in program.rules() {
        for atom in rule
            .head
            .iter()
            .chain(rule.body.iter().filter_map(|l| l.atom()))
        {
            for arg in &atom.args {
                push_term(arg);
            }
        }
        for lit in &rule.body {
            if let Literal::Cmp(_, l, r) = lit {
                push_term(l);
                push_term(r);
            }
        }
    }
    out
}

/// Naive grounding: instantiate every rule with every assignment of its
/// variables to the Herbrand universe, keep an instantiation only when all
/// of its comparison literals hold, and drop the (now satisfied) comparison
/// literals from the output.
pub fn naive_ground(program: &Program) -> Vec<GroundRuleRef> {
    let universe = universe(program);
    let mut out = Vec::new();
    for rule in program.rules() {
        let vars = rule.vars();
        if vars.is_empty() {
            if let Some(ground) = instantiate(rule, &Bindings::new()) {
                out.push(ground);
            }
            continue;
        }
        if universe.is_empty() {
            continue; // variables with nothing to bind them: no instances
        }
        // Odometer over universe^|vars|.
        let mut indices = vec![0usize; vars.len()];
        'assignments: loop {
            let bindings: Bindings = vars
                .iter()
                .zip(&indices)
                .map(|(v, &i)| (*v, universe[i].clone()))
                .collect();
            if let Some(ground) = instantiate(rule, &bindings) {
                out.push(ground);
            }
            let mut k = 0;
            loop {
                indices[k] += 1;
                if indices[k] < universe.len() {
                    break;
                }
                indices[k] = 0;
                k += 1;
                if k == indices.len() {
                    break 'assignments;
                }
            }
        }
    }
    out
}

/// One rule instantiation under `bindings`: `None` when a comparison
/// literal fails (the instantiation is inconsistent, not an error).
fn instantiate(rule: &Rule, bindings: &Bindings) -> Option<GroundRuleRef> {
    let mut pos = Vec::new();
    let mut neg = Vec::new();
    for lit in &rule.body {
        match lit {
            Literal::Pos(a) => pos.push(render(&a.substitute(bindings)?)),
            Literal::Neg(a) => neg.push(render(&a.substitute(bindings)?)),
            Literal::Cmp(op, l, r) => {
                let l = l.substitute(bindings)?;
                let r = r.substitute(bindings)?;
                if !op.eval(&l, &r) {
                    return None;
                }
            }
        }
    }
    let head = match &rule.head {
        Some(h) => Some(render(&h.substitute(bindings)?)),
        None => None,
    };
    Some(GroundRuleRef {
        head,
        head_pred: rule.head.as_ref().map(|h| h.pred),
        pos,
        neg,
    })
}

/// The rendered text of a ground atom — the reference currency for model
/// membership and cross-engine comparison.
pub fn render(atom: &Atom) -> String {
    atom.to_string()
}

/// Assigns each predicate its stratum: positive dependencies stay level or
/// rise, negative dependencies strictly rise. Returns `None` when the
/// program recurses through negation (no stratification exists).
pub fn stratify(program: &Program) -> Option<HashMap<Symbol, usize>> {
    let mut strata: HashMap<Symbol, usize> = HashMap::new();
    let mut preds = 0usize;
    for rule in program.rules() {
        for atom in rule
            .head
            .iter()
            .chain(rule.body.iter().filter_map(|l| l.atom()))
        {
            if strata.insert(atom.pred, 0).is_none() {
                preds += 1;
            }
        }
    }
    // Longest-path fixpoint; a stratum exceeding the predicate count means
    // a cycle through negation.
    loop {
        let mut changed = false;
        for rule in program.rules() {
            let Some(head) = &rule.head else { continue };
            let mut need = strata[&head.pred];
            for lit in &rule.body {
                match lit {
                    Literal::Pos(a) => need = need.max(strata[&a.pred]),
                    Literal::Neg(a) => need = need.max(strata[&a.pred] + 1),
                    Literal::Cmp(..) => {}
                }
            }
            if need > preds {
                return None;
            }
            if need > strata[&head.pred] {
                strata.insert(head.pred, need);
                changed = true;
            }
        }
        if !changed {
            return Some(strata);
        }
    }
}

/// The stable models of a stratified program: the perfect model computed
/// stratum by stratum, then filtered by the integrity constraints. Returns
/// `None` when the program is not stratified (caller should fall back to
/// [`stable_models_bruteforce`]); `Some(vec![])` when a constraint
/// eliminates the perfect model.
pub fn stable_models_stratified(program: &Program) -> Option<Vec<Model>> {
    let strata = stratify(program)?;
    let ground = naive_ground(program);
    let max_stratum = strata.values().copied().max().unwrap_or(0);
    let mut model: Model = BTreeSet::new();
    for s in 0..=max_stratum {
        loop {
            let mut changed = false;
            for rule in &ground {
                let (Some(head), Some(pred)) = (&rule.head, rule.head_pred) else {
                    continue;
                };
                if strata[&pred] != s || model.contains(head) {
                    continue;
                }
                // Negative literals reference strictly lower strata, which
                // are already complete — membership in `model` is final.
                if rule.pos.iter().all(|a| model.contains(a))
                    && rule.neg.iter().all(|a| !model.contains(a))
                {
                    model.insert(head.clone());
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }
    for rule in &ground {
        if rule.head.is_none()
            && rule.pos.iter().all(|a| model.contains(a))
            && rule.neg.iter().all(|a| !model.contains(a))
        {
            return Some(Vec::new());
        }
    }
    Some(vec![model])
}

/// Stable models by brute force: facts are fixed in, every subset of the
/// remaining candidate heads is tested against the Gelfond–Lifschitz
/// criterion (the candidate must equal the least model of its own reduct).
/// Returns `None` when more than `max_extra` candidate atoms would make
/// enumeration explode — the caller then relies on the stratified path.
pub fn stable_models_bruteforce(program: &Program, max_extra: usize) -> Option<Vec<Model>> {
    let ground = naive_ground(program);
    let mut facts: Model = BTreeSet::new();
    for rule in &ground {
        if let (Some(head), true, true) = (&rule.head, rule.pos.is_empty(), rule.neg.is_empty()) {
            facts.insert(head.clone());
        }
    }
    let mut candidates: Vec<String> = Vec::new();
    for rule in &ground {
        if let Some(head) = &rule.head {
            if !facts.contains(head) && !candidates.contains(head) {
                candidates.push(head.clone());
            }
        }
    }
    if candidates.len() > max_extra {
        return None;
    }
    let mut models: Vec<Model> = Vec::new();
    for mask in 0u64..(1u64 << candidates.len()) {
        let mut m = facts.clone();
        for (i, c) in candidates.iter().enumerate() {
            if mask & (1 << i) != 0 {
                m.insert(c.clone());
            }
        }
        if is_stable(&ground, &m) {
            models.push(m);
        }
    }
    models.sort();
    models.dedup();
    Some(models)
}

/// The Gelfond–Lifschitz check: `m` is stable iff it equals the least model
/// of the reduct (rules whose negative body is disjoint from `m`, negatives
/// dropped) and violates no constraint.
fn is_stable(ground: &[GroundRuleRef], m: &Model) -> bool {
    let mut least: Model = BTreeSet::new();
    loop {
        let mut changed = false;
        for rule in ground {
            let Some(head) = &rule.head else { continue };
            if least.contains(head) {
                continue;
            }
            if rule.neg.iter().all(|a| !m.contains(a)) && rule.pos.iter().all(|a| least.contains(a))
            {
                least.insert(head.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    if &least != m {
        return false;
    }
    for rule in ground {
        if rule.head.is_none()
            && rule.pos.iter().all(|a| m.contains(a))
            && rule.neg.iter().all(|a| !m.contains(a))
        {
            return false;
        }
    }
    true
}

// ---------------------------------------------------------------------------
// Reference PDP
// ---------------------------------------------------------------------------

/// Three-valued condition evaluation, restated order-insensitively: a
/// conjunction is false if any conjunct is definitely false, unknown if any
/// is unknown, true otherwise; disjunction dually. `None` is unknown
/// (missing attribute or type-mismatched comparison).
pub fn eval_cond(cond: &Cond, request: &Request) -> Option<bool> {
    match cond {
        Cond::Cmp {
            category,
            attr,
            op,
            value,
        } => {
            use agenp_policy::{AttrValue, CondOp};
            let actual = request.get(*category, attr)?;
            let ord = match (actual, value) {
                (AttrValue::Int(a), AttrValue::Int(b)) => a.cmp(b),
                (AttrValue::Str(a), AttrValue::Str(b)) => a.cmp(b),
                (AttrValue::Bool(a), AttrValue::Bool(b)) => a.cmp(b),
                _ => return None,
            };
            Some(match op {
                CondOp::Eq => ord.is_eq(),
                CondOp::Ne => ord.is_ne(),
                CondOp::Lt => ord.is_lt(),
                CondOp::Le => ord.is_le(),
                CondOp::Gt => ord.is_gt(),
                CondOp::Ge => ord.is_ge(),
            })
        }
        Cond::In {
            category,
            attr,
            values,
        } => Some(values.contains(request.get(*category, attr)?)),
        Cond::And(cs) => {
            let parts: Vec<Option<bool>> = cs.iter().map(|c| eval_cond(c, request)).collect();
            if parts.contains(&Some(false)) {
                Some(false)
            } else if parts.iter().any(|p| p.is_none()) {
                None
            } else {
                Some(true)
            }
        }
        Cond::Or(cs) => {
            let parts: Vec<Option<bool>> = cs.iter().map(|c| eval_cond(c, request)).collect();
            if parts.contains(&Some(true)) {
                Some(true)
            } else if parts.iter().any(|p| p.is_none()) {
                None
            } else {
                Some(false)
            }
        }
        Cond::Not(c) => eval_cond(c, request).map(|b| !b),
    }
}

/// Reference rule evaluation: effect when the condition holds,
/// `NotApplicable` when it definitely does not, `Indeterminate` on unknown.
pub fn eval_rule(rule: &PolicyRule, request: &Request) -> Decision {
    match &rule.condition {
        None => rule.effect.into(),
        Some(c) => match eval_cond(c, request) {
            Some(true) => rule.effect.into(),
            Some(false) => Decision::NotApplicable,
            None => Decision::Indeterminate,
        },
    }
}

/// Reference combining, written over a materialized decision list.
/// `FirstApplicable` returns the earliest `Permit`/`Deny` even when an
/// `Indeterminate` precedes it — matching the XACML-style semantics of the
/// fast path.
pub fn combine(alg: CombiningAlg, decisions: &[Decision]) -> Decision {
    match alg {
        CombiningAlg::DenyOverrides => {
            if decisions.contains(&Decision::Deny) {
                Decision::Deny
            } else if decisions.contains(&Decision::Indeterminate) {
                Decision::Indeterminate
            } else if decisions.contains(&Decision::Permit) {
                Decision::Permit
            } else {
                Decision::NotApplicable
            }
        }
        CombiningAlg::PermitOverrides => {
            if decisions.contains(&Decision::Permit) {
                Decision::Permit
            } else if decisions.contains(&Decision::Indeterminate) {
                Decision::Indeterminate
            } else if decisions.contains(&Decision::Deny) {
                Decision::Deny
            } else {
                Decision::NotApplicable
            }
        }
        CombiningAlg::FirstApplicable => {
            for d in decisions {
                if matches!(d, Decision::Permit | Decision::Deny) {
                    return *d;
                }
            }
            if decisions.contains(&Decision::Indeterminate) {
                Decision::Indeterminate
            } else {
                Decision::NotApplicable
            }
        }
    }
}

/// The straight-line reference PDP: evaluate every rule of every policy,
/// combine per policy, combine across policies. No caches, no snapshots,
/// no early exits beyond what the combining semantics require.
pub fn decide_reference(
    policies: &[Policy],
    combining_alg: CombiningAlg,
    request: &Request,
) -> Decision {
    let per_policy: Vec<Decision> = policies
        .iter()
        .map(|p| {
            let rule_decisions: Vec<Decision> =
                p.rules.iter().map(|r| eval_rule(r, request)).collect();
            combine(p.combining, &rule_decisions)
        })
        .collect();
    combine(combining_alg, &per_policy)
}

/// The straight-line reference for obligation/penalty collection — the
/// semantics of `agenp_policy::evaluate_policies_effects` restated over
/// the reference primitives ([`eval_rule`], [`combine`]), sharing no code
/// with the fast path and taking none of its shortcuts (no
/// annotation-free fast-skip):
///
/// 1. The decision is exactly [`decide_reference`]; obligations never
///    change it. Indefinite decisions carry nothing.
/// 2. A policy contributes iff combining its materialized rule decisions
///    yields the final decision; within a contributing policy a rule
///    contributes iff its own reference evaluation equals the final
///    decision.
/// 3. Walk policies in order, policy-level specs before that policy's
///    contributing rules' specs (rule order), keeping specs whose `on`
///    effect matches the final effect, deduplicated by obligation id with
///    the first occurrence winning.
/// 4. The penalty is the maximum annotation over contributing `Deny`
///    rules; zero for any non-`Deny` decision.
pub fn effects_reference(
    policies: &[Policy],
    combining_alg: CombiningAlg,
    request: &Request,
) -> DecisionEffects {
    let decision = decide_reference(policies, combining_alg, request);
    let mut effects = DecisionEffects::bare(decision);
    let Some(final_effect) = decision.effect() else {
        return effects;
    };
    for policy in policies {
        let rule_decisions: Vec<Decision> =
            policy.rules.iter().map(|r| eval_rule(r, request)).collect();
        if combine(policy.combining, &rule_decisions) != decision {
            continue;
        }
        for spec in &policy.obligations {
            if spec.on == final_effect {
                push_unique(&mut effects.obligations, &spec.obligation);
            }
        }
        for (rule, rule_decision) in policy.rules.iter().zip(&rule_decisions) {
            if *rule_decision != decision {
                continue;
            }
            for spec in &rule.obligations {
                if spec.on == final_effect {
                    push_unique(&mut effects.obligations, &spec.obligation);
                }
            }
            if decision == Decision::Deny {
                if let Some(p) = rule.penalty {
                    effects.penalty = effects.penalty.max(p);
                }
            }
        }
    }
    effects
}

/// First-occurrence-wins id dedup for obligation collection.
fn push_unique(out: &mut Vec<Obligation>, ob: &Obligation) {
    if !out.iter().any(|o| o.id == ob.id) {
        out.push(ob.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Program {
        text.parse().expect("test program parses")
    }

    #[test]
    fn stratified_reference_computes_the_perfect_model() {
        let p = parse(
            "edge(a, b). edge(b, c).
             path(X, Y) :- edge(X, Y).
             path(X, Z) :- edge(X, Y), path(Y, Z).
             unreachable(X) :- edge(X, X), not path(a, X).",
        );
        let models = stable_models_stratified(&p).expect("stratified");
        assert_eq!(models.len(), 1);
        let m = &models[0];
        assert!(m.contains("path(a, c)"));
        assert!(!m.iter().any(|a| a.starts_with("unreachable")));
    }

    #[test]
    fn constraints_can_eliminate_the_perfect_model() {
        let p = parse("q(a). r(X) :- q(X). :- r(a).");
        assert_eq!(stable_models_stratified(&p), Some(vec![]));
    }

    #[test]
    fn bruteforce_handles_non_stratified_choice_programs() {
        // Even/odd choice: two stable models — beyond the stratified
        // evaluator (which must refuse), squarely in brute-force territory.
        let p = parse(
            "item(a).
             chosen(X) :- item(X), not other(X).
             other(X) :- item(X), not chosen(X).",
        );
        assert_eq!(stratify(&p), None);
        let models = stable_models_bruteforce(&p, 10).expect("small candidate set");
        assert_eq!(models.len(), 2);
        assert!(models.iter().any(|m| m.contains("chosen(a)")));
        assert!(models.iter().any(|m| m.contains("other(a)")));
    }

    #[test]
    fn bruteforce_declines_oversized_candidate_sets() {
        let p = parse(
            "n(a). n(b). n(c).
             q(X, Y) :- n(X), n(Y), not r(X, Y).
             r(X, Y) :- n(X), n(Y), not q(X, Y).",
        );
        assert_eq!(stable_models_bruteforce(&p, 4), None);
    }

    #[test]
    fn bruteforce_engages_on_generated_programs() {
        // The differential suite's second reference must not be dead code:
        // a healthy share of generated programs fit the candidate budget.
        let engaged = (0..64u64)
            .filter(|&seed| {
                let mut rng = crate::gen::rng_for(seed);
                let p = crate::gen::stratified_program(&mut rng);
                stable_models_bruteforce(&p, 10).is_some()
            })
            .count();
        assert!(
            engaged >= 16,
            "brute force engaged on only {engaged}/64 seeds"
        );
    }

    #[test]
    fn effects_reference_dedups_first_wins_and_takes_the_max_penalty() {
        use agenp_policy::{Category, Effect};
        let req = Request::new().subject("role", "dba");
        let deny = |id: &str, deadline: u64, penalty: u32| {
            PolicyRule::new(id, Effect::Deny, Cond::eq(Category::Subject, "role", "dba"))
                .with_obligation(
                    Effect::Deny,
                    Obligation::new("audit", "audit-log", deadline),
                )
                .with_penalty(penalty)
        };
        let p = Policy::new("p", vec![deny("r0", 5, 2), deny("r1", 9, 7)]);
        let fx = effects_reference(&[p], CombiningAlg::DenyOverrides, &req);
        assert_eq!(fx.decision, Decision::Deny);
        // Both rules contribute the same obligation id: the first wins,
        // so the deadline is r0's, while the penalty is the max of both.
        assert_eq!(
            fx.obligations,
            vec![Obligation::new("audit", "audit-log", 5)]
        );
        assert_eq!(fx.penalty, 7);
    }

    #[test]
    fn effects_reference_matches_the_fast_evaluator_on_generated_sets() {
        for seed in 0..96u64 {
            let mut rng = crate::gen::rng_for(seed);
            let (policies, combining) = crate::gen::policy_set(&mut rng);
            for request in crate::gen::request_stream(&mut rng, 6) {
                let reference = effects_reference(&policies, combining, &request);
                let fast = agenp_policy::evaluate_policies_effects(&policies, combining, &request);
                assert_eq!(
                    reference,
                    fast,
                    "seed={seed} key={}",
                    request.canonical_key()
                );
            }
        }
    }

    #[test]
    fn reference_pdp_matches_the_three_valued_corner_cases() {
        use agenp_policy::{Category, Effect};
        // Empty disjunction: definitely false, so NotApplicable.
        let rule = PolicyRule::new("r", Effect::Permit, Cond::Or(Vec::new()));
        assert_eq!(eval_rule(&rule, &Request::new()), Decision::NotApplicable);
        // Missing attribute: unknown, so Indeterminate.
        let rule = PolicyRule::new(
            "r",
            Effect::Permit,
            Cond::eq(Category::Subject, "role", "dba"),
        );
        assert_eq!(eval_rule(&rule, &Request::new()), Decision::Indeterminate);
        // FirstApplicable returns the first Permit/Deny even after an
        // Indeterminate.
        assert_eq!(
            combine(
                CombiningAlg::FirstApplicable,
                &[Decision::Indeterminate, Decision::Deny]
            ),
            Decision::Deny
        );
    }
}
