//! Property tests over the generators themselves: the safety and
//! stratification guarantees the reference evaluator's completeness rests
//! on, and injectivity of `Request::canonical_key` on generated requests —
//! the invariant that keeps both the shared sharded cache and the
//! per-thread pin caches from serving one request another request's
//! decision.

use agenp_refsem::gen;
use agenp_refsem::reference;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every generated program is safe and stratified — the contract the
    /// naive reference evaluator's completeness depends on.
    #[test]
    fn generated_programs_are_safe_and_stratified(seed in 0u64..1_000_000) {
        let mut rng = gen::rng_for(seed);
        let program = gen::stratified_program(&mut rng);
        prop_assert!(
            program.unsafe_rule().is_none(),
            "seed={seed}: unsafe rule in\n{program}"
        );
        prop_assert!(
            reference::stratify(&program).is_some(),
            "seed={seed}: unstratifiable program\n{program}"
        );
    }

    /// `canonical_key` is injective on generated requests: two generated
    /// requests share a key only when they are equal attribute-for-
    /// attribute. The generator's value pools deliberately collide at the
    /// Display level (`"3"` vs `3`, `"true"` vs `true`), so a lossy
    /// encoding would fail here.
    #[test]
    fn canonical_key_is_injective_on_generated_requests(seed in 0u64..1_000_000) {
        let mut rng = gen::rng_for(seed);
        let a = gen::request(&mut rng);
        let b = gen::request(&mut rng);
        if a.canonical_key() == b.canonical_key() {
            let a_attrs: Vec<_> = a.iter().map(|(c, n, v)| (c, n.to_owned(), v.clone())).collect();
            let b_attrs: Vec<_> = b.iter().map(|(c, n, v)| (c, n.to_owned(), v.clone())).collect();
            prop_assert_eq!(a_attrs, b_attrs, "seed={}: key collision", seed);
        }
    }

    /// Request streams really do contain duplicates (so the cache and
    /// batch-dedup paths the differential suite claims to cover are
    /// actually exercised) and every duplicate is a genuine equal request.
    #[test]
    fn request_streams_duplicate_by_equality(seed in 0u64..1_000_000) {
        let mut rng = gen::rng_for(seed);
        let stream = gen::request_stream(&mut rng, 12);
        prop_assert_eq!(stream.len(), 12);
        for (i, a) in stream.iter().enumerate() {
            for b in &stream[i + 1..] {
                let same_key = a.canonical_key() == b.canonical_key();
                let same_attrs = a.iter().count() == b.iter().count()
                    && a.iter().zip(b.iter()).all(|(x, y)| x == y);
                prop_assert_eq!(same_key, same_attrs, "seed={}", seed);
            }
        }
    }
}

/// The obligation/penalty coverage claim is real, not vacuous: across a
/// seed band, generated policy sets carry annotations and a healthy share
/// of *served* decisions actually surface obligations and (on denials)
/// penalties — otherwise the differential suite would be "covering" the
/// new semantics on bare decisions only.
#[test]
fn generated_policy_sets_exercise_obligations_and_penalties() {
    use agenp_policy::{evaluate_policies_effects, Decision};
    let (mut annotated_sets, mut obligation_decisions, mut penalized_denials) = (0u32, 0u32, 0u32);
    for seed in 0..256u64 {
        let mut rng = gen::rng_for(seed);
        let (policies, combining) = gen::policy_set(&mut rng);
        if policies.iter().any(|p| p.has_annotations()) {
            annotated_sets += 1;
        }
        for request in gen::request_stream(&mut rng, 8) {
            let fx = evaluate_policies_effects(&policies, combining, &request);
            if !fx.obligations.is_empty() {
                obligation_decisions += 1;
            }
            if fx.decision == Decision::Deny && fx.penalty > 0 {
                penalized_denials += 1;
            }
        }
    }
    assert!(
        annotated_sets >= 128,
        "only {annotated_sets}/256 generated sets carry annotations"
    );
    assert!(
        obligation_decisions >= 64,
        "only {obligation_decisions} decisions carried obligations"
    );
    assert!(
        penalized_denials >= 32,
        "only {penalized_denials} denials carried penalties"
    );
}
