//! Metamorphic suite over the ASP substrate: rule permutation, inert-rule
//! insertion, and bijective predicate renaming must leave answer sets
//! unchanged (renaming: changed by exactly the bijection).

use agenp_refsem::run_metamorphic_asp_case;

#[test]
fn asp_transformations_preserve_answer_sets() {
    for seed in 0..256u64 {
        if let Err(msg) = run_metamorphic_asp_case(seed) {
            panic!("{msg}");
        }
    }
}
