//! Metamorphic suite over the serving tier, proven through both `decide`
//! and `decide_batch` (handle and pin): inert policy rules and request
//! reordering preserve decisions under every combining algorithm; policy
//! and rule permutation preserve them under the order-insensitive ones.

use agenp_refsem::run_metamorphic_pdp_case;

#[test]
fn pdp_transformations_preserve_decisions_through_all_paths() {
    for seed in 0..512u64 {
        if let Err(msg) = run_metamorphic_pdp_case(seed) {
            panic!("{msg}");
        }
    }
}
