//! Differential suite: fast grounder+solver vs the naive reference
//! evaluator on seeded generated programs. A failure message leads with
//! the seed; replay it with `agenp_refsem::run_asp_case(seed)`.

use agenp_refsem::run_asp_case;

#[test]
fn fast_engine_matches_reference_on_generated_programs() {
    for seed in 0..384u64 {
        if let Err(msg) = run_asp_case(seed) {
            panic!("{msg}");
        }
    }
}

#[test]
fn fast_engine_matches_reference_on_a_high_seed_band() {
    // A second, disjoint seed band: cheap insurance against the suite
    // overfitting to the low seeds the smoke gate also covers.
    for seed in 1_000_000..1_000_128u64 {
        if let Err(msg) = run_asp_case(seed) {
            panic!("{msg}");
        }
    }
}
