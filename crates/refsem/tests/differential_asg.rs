//! Differential suite: the Earley-plus-ASP grammar membership pipeline vs
//! plain NFA simulation on seeded right-linear grammars, exhaustively over
//! all strings up to length 4.

use agenp_refsem::run_asg_case;

#[test]
fn asg_membership_matches_nfa_reference_on_generated_grammars() {
    for seed in 0..48u64 {
        if let Err(msg) = run_asg_case(seed) {
            panic!("{msg}");
        }
    }
}
