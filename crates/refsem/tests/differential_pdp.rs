//! Differential suite: every serving path of the PDP tier (handle singles,
//! handle batch, pin singles, pin batch — cache-cold and cache-hot) vs the
//! straight-line reference `decide` on seeded generated policy sets and
//! duplicate-bearing request streams.

use agenp_refsem::run_pdp_case;

#[test]
fn serving_tier_matches_reference_on_generated_policy_sets() {
    for seed in 0..768u64 {
        if let Err(msg) = run_pdp_case(seed) {
            panic!("{msg}");
        }
    }
}

#[test]
fn serving_tier_matches_reference_on_a_high_seed_band() {
    for seed in 2_000_000..2_000_256u64 {
        if let Err(msg) = run_pdp_case(seed) {
            panic!("{msg}");
        }
    }
}
