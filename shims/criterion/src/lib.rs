//! Offline stand-in for the `criterion` API subset this workspace's
//! bench targets use. It is a *smoke harness*, not a statistics engine:
//! under `cargo bench` each benchmark body runs once and its wall time is
//! printed; under `cargo test` (no `--bench` flag) the benchmarks are
//! registered but skipped, so bench targets stay cheap to build and run
//! in CI. The repo's real performance numbers come from `crates/bench`'s
//! own binaries, which do their own measurement and emit `BENCH_*.json`.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::Instant;

/// Keeps a value out of trivial dead-code elimination.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    run: bool,
}

impl Criterion {
    /// A driver that actually runs bodies iff `run` (i.e. `--bench`).
    pub fn with_run(run: bool) -> Criterion {
        Criterion { run }
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            run: self.run,
            _marker: std::marker::PhantomData,
        }
    }

    /// Registers a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(self.run, name, &mut f);
        self
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    run: bool,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the smoke harness runs once.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the smoke harness runs once.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Registers a benchmark in this group.
    pub fn bench_function(
        &mut self,
        name: impl Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(self.run, &format!("{}/{}", self.name, name), &mut f);
        self
    }

    /// Registers a parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(self.run, &format!("{}/{}", self.name, id.0), &mut |b| {
            f(b, input)
        });
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark label.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A label for `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", function.into(), parameter))
    }
}

/// Runs benchmark bodies.
#[derive(Debug)]
pub struct Bencher {
    run: bool,
}

impl Bencher {
    /// Runs `f` once (when benching) and reports its wall time.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.run {
            black_box(f());
        }
    }
}

fn run_one(run: bool, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { run };
    if run {
        let start = Instant::now();
        f(&mut b);
        println!("bench {label}: {:?}", start.elapsed());
    } else {
        // Registration pass only: call with a non-running bencher so the
        // setup code stays type-checked but cheap.
        let _ = &mut b;
    }
}

/// Whether this invocation should execute benchmark bodies.
pub fn should_run() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::with_run($crate::should_run());
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10);
        let mut hits = 0;
        group.bench_function("add", |b| b.iter(|| hits += 1));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4usize, |b, n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
    }

    #[test]
    fn run_mode_executes_bodies_once() {
        let mut c = Criterion::with_run(true);
        let mut count = 0;
        c.benchmark_group("g")
            .bench_function("n", |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
        sample_bench(&mut c);
    }

    #[test]
    fn test_mode_skips_bodies() {
        let mut c = Criterion::with_run(false);
        let mut count = 0;
        c.benchmark_group("g")
            .bench_function("n", |b| b.iter(|| count += 1));
        assert_eq!(count, 0);
    }
}
