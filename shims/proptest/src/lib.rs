//! Deterministic offline stand-in for the `proptest` API subset this
//! workspace uses. Each `proptest!` test runs `ProptestConfig::cases`
//! generated cases from a seed derived from the test's name, so failures
//! reproduce exactly run-to-run. There is no shrinking: a failing case
//! reports its case index and the `prop_assert!` message instead.
//!
//! Provided surface: the `proptest!`, `prop_assert!`, `prop_assert_eq!`
//! and `prop_oneof!` macros; [`strategy::Strategy`] with `prop_map`;
//! [`strategy::Just`]; [`arbitrary::any`]; integer/float ranges, tuples
//! (arity 2–8) and `&str` character-class patterns as strategies;
//! [`collection::vec`] / [`collection::btree_set`]; [`option::of`] /
//! [`option::weighted`]; [`test_runner::ProptestConfig::with_cases`].

// The union/closure plumbing mirrors upstream type shapes verbatim;
// local `type` aliases would only obscure which upstream item is stubbed.
#![allow(clippy::type_complexity)]

/// Test-runner configuration (mirrors `proptest::test_runner`).
pub mod test_runner {
    /// How a `proptest!` block runs its cases.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

/// Strategies: seeded value generators (mirrors `proptest::strategy`).
pub mod strategy {
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// The seeded generator strategies draw from.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator seeded with `seed`.
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// The next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw below `n` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A generator of test values. Unlike upstream proptest there is no
    /// shrink tree; `gen_value` draws one value directly.
    pub trait Strategy: Clone {
        /// The type of value this strategy generates.
        type Value;

        /// Draws one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Value) -> O + Clone,
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O + Clone,
    {
        type Value = O;
        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    /// `&str` strategies: a character-class pattern of the shape
    /// `[class]{lo,hi}` (the regex subset the workspace's fuzz tests
    /// use). The class supports literal characters, `a-b` ranges and the
    /// escapes `\n`, `\t`, `\\`.
    impl Strategy for &'static str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            let (chars, lo, hi) = parse_char_class(self);
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| chars[rng.below(chars.len() as u64) as usize])
                .collect()
        }
    }

    fn bad_pattern(pattern: &str) -> ! {
        panic!("unsupported string strategy pattern: {pattern:?} (expected `[class]{{lo,hi}}`)")
    }

    fn parse_char_class(pattern: &str) -> (Vec<char>, usize, usize) {
        let rest = pattern
            .strip_prefix('[')
            .unwrap_or_else(|| bad_pattern(pattern));
        let (class, counts) = rest.split_once(']').unwrap_or_else(|| bad_pattern(pattern));
        let counts = counts
            .strip_prefix('{')
            .and_then(|c| c.strip_suffix('}'))
            .unwrap_or_else(|| bad_pattern(pattern));
        let (lo, hi) = counts
            .split_once(',')
            .unwrap_or_else(|| bad_pattern(pattern));
        let (lo, hi): (usize, usize) = (
            lo.trim().parse().unwrap_or_else(|_| bad_pattern(pattern)),
            hi.trim().parse().unwrap_or_else(|_| bad_pattern(pattern)),
        );

        let mut items: Vec<char> = Vec::new();
        let mut chars = class.chars().peekable();
        while let Some(c) = chars.next() {
            let c = if c == '\\' {
                match chars.next() {
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some('\\') => '\\',
                    other => panic!("unsupported escape \\{other:?} in {pattern:?}"),
                }
            } else {
                c
            };
            if chars.peek() == Some(&'-') && chars.clone().nth(1).is_some_and(|n| n != ']') {
                chars.next();
                let end = chars.next().unwrap_or_else(|| bad_pattern(pattern));
                for code in (c as u32)..=(end as u32) {
                    items.extend(char::from_u32(code));
                }
            } else {
                items.push(c);
            }
        }
        assert!(!items.is_empty(), "empty character class in {pattern:?}");
        (items, lo, hi)
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }

    /// Uniform choice among alternatives (built by `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<Rc<dyn Fn(&mut TestRng) -> V>>,
    }

    impl<V> Union<V> {
        /// A union over the given arms (at least one).
        pub fn new(arms: Vec<Rc<dyn Fn(&mut TestRng) -> V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Union<V> {
            Union {
                arms: self.arms.clone(),
            }
        }
    }

    impl<V> std::fmt::Debug for Union<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "Union({} arms)", self.arms.len())
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn gen_value(&self, rng: &mut TestRng) -> V {
            let arm = rng.below(self.arms.len() as u64) as usize;
            (self.arms[arm])(rng)
        }
    }

    /// Wraps a strategy into a `prop_oneof!` arm.
    pub fn union_arm<S: Strategy + 'static>(s: S) -> Rc<dyn Fn(&mut TestRng) -> S::Value> {
        Rc::new(move |rng| s.gen_value(rng))
    }
}

/// `any::<T>()` support (mirrors `proptest::arbitrary`).
pub mod arbitrary {
    use super::strategy::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The strategy returned by [`any`].
    #[derive(Debug)]
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Any<T> {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// An element-count range: a `usize` (exact) or `lo..hi`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl SizeRange {
        fn draw(self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo) as u64) as usize
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.draw(rng);
            (0..len).map(|_| self.elem.gen_value(rng)).collect()
        }
    }

    /// A `Vec` of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// The strategy returned by [`btree_set`].
    #[derive(Clone, Debug)]
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let want = self.size.draw(rng);
            let mut set = BTreeSet::new();
            // The element domain may be smaller than `want`; bound the
            // attempts so generation always terminates.
            for _ in 0..(want * 20 + 20) {
                if set.len() >= want {
                    break;
                }
                set.insert(self.elem.gen_value(rng));
            }
            set
        }
    }

    /// A `BTreeSet` of `size` distinct elements drawn from `elem`.
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// `Option` strategies (mirrors `proptest::option`).
pub mod option {
    use super::strategy::{Strategy, TestRng};

    /// The strategy returned by [`of`] and [`weighted`].
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
        some_p: f64,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.unit_f64() < self.some_p {
                Some(self.inner.gen_value(rng))
            } else {
                None
            }
        }
    }

    /// `Some` half the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        weighted(0.5, inner)
    }

    /// `Some` with probability `some_p`.
    pub fn weighted<S: Strategy>(some_p: f64, inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner, some_p }
    }
}

/// The usual glob import (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Fails the current case with `assertion failed` (or a custom message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the current case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                __l, __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                __l, __r, ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// A uniform choice among the listed strategies (all the same `Value`).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::union_arm($strategy)),+
        ])
    };
}

/// Defines seeded property tests. Each `#[test] fn name(pat in strategy,
/// ...) { body }` runs `cases` generated inputs; `prop_assert*!` failures
/// report the case index and message (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$attr:meta])*
     fn $name:ident($($argpat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config = $config;
            // Seed from the test name so every test explores a distinct,
            // reproducible stream.
            let mut __seed: u64 = 0xcbf2_9ce4_8422_2325;
            for __b in ::std::stringify!($name).bytes() {
                __seed = (__seed ^ __b as u64).wrapping_mul(0x100_0000_01b3);
            }
            for __case in 0..__config.cases {
                let mut __rng =
                    $crate::strategy::TestRng::new(__seed.wrapping_add(__case as u64));
                let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $(
                        let $argpat = $crate::strategy::Strategy::gen_value(
                            &($strategy),
                            &mut __rng,
                        );
                    )+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    ::std::panic!(
                        "proptest {} failed at case {}/{}: {}",
                        ::std::stringify!($name),
                        __case,
                        __config.cases,
                        __msg
                    );
                }
            }
        }
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::{Strategy, TestRng};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, y in -4i64..=4, b in any::<bool>()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-4..=4).contains(&y), "y = {y}");
            let _ = b;
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec((0u8..6).prop_map(|i| i * 2), 1..5),
            o in crate::option::of(Just(7u8)),
            pick in prop_oneof![Just("a"), Just("b")],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|x| x % 2 == 0));
            prop_assert!(o.is_none() || o == Some(7));
            prop_assert!(pick == "a" || pick == "b");
        }
    }

    #[test]
    fn string_patterns_generate_from_the_class() {
        let mut rng = TestRng::new(5);
        let strat = "[a-c\\n]{2,10}";
        for _ in 0..50 {
            let s = strat.gen_value(&mut rng);
            assert!((2..=10).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| matches!(c, 'a'..='c' | '\n')), "{s:?}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = crate::collection::btree_set(0i64..20, 1..6);
        let a = strat.gen_value(&mut TestRng::new(11));
        let b = strat.gen_value(&mut TestRng::new(11));
        assert_eq!(a, b);
        assert!(!a.is_empty() && a.len() < 6);
    }
}
