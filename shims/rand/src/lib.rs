//! Deterministic offline stand-in for the `rand` 0.8 API subset this
//! workspace uses: `StdRng::seed_from_u64`, `Rng::{gen_range, gen_bool}`
//! and `seq::SliceRandom::shuffle`.
//!
//! The generator is SplitMix64 — statistically solid for simulation and
//! sampling workloads, trivially reproducible, and dependency-free. It is
//! **not** cryptographically secure; nothing in this workspace needs
//! crypto-grade randomness.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (`a..b` or `a..=b`, ints or floats).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A half-open or inclusive range that can be sampled uniformly.
///
/// Implemented generically over [`SampleUniform`] element types (as in
/// upstream rand) so integer-literal ranges unify with the type the
/// surrounding expression demands.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

/// Element types [`SampleRange`] knows how to sample.
pub trait SampleUniform: Copy {
    /// A uniform draw from `lo..hi`.
    fn sample_half_open<G: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self;
    /// A uniform draw from `lo..=hi`.
    fn sample_inclusive<G: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut G) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<G: RngCore + ?Sized>(self, rng: &mut G) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Maps 64 random bits onto `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased-enough uniform index below `n` via 128-bit multiply-shift.
fn below(bits: u64, n: u64) -> u64 {
    ((bits as u128 * n as u128) >> 64) as u64
}

macro_rules! int_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<G: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut G) -> $t {
                assert!(lo < hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + below(rng.next_u64(), span) as i128) as $t
            }
            fn sample_inclusive<G: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut G) -> $t {
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + below(rng.next_u64(), span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<G: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut G) -> f64 {
        assert!(lo < hi, "empty gen_range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
    fn sample_inclusive<G: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut G) -> f64 {
        f64::sample_half_open(lo, hi, rng)
    }
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{below, RngCore};

    /// In-place slice shuffling.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = below(rng.next_u64(), i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let x = a.gen_range(0..13usize);
            assert_eq!(x, b.gen_range(0..13usize));
            assert!(x < 13);
            let y = a.gen_range(-1.0..1.0);
            assert_eq!(y, b.gen_range(-1.0..1.0));
            assert!((-1.0..1.0).contains(&y));
            let z = a.gen_range(30..=70i64);
            assert_eq!(z, b.gen_range(30..=70i64));
            assert!((30..=70).contains(&z));
            assert_eq!(a.gen_bool(0.3), b.gen_bool(0.3));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 42 should move something");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits: {hits}");
    }
}
